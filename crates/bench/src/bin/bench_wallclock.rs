//! Wall-clock baseline for the campaign executor: how long the
//! representative campaign points take serially vs fanned across the
//! machine, written as `BENCH_campaign.json` at the repository root.
//!
//! Two passes over the same run matrix (sort + FFT on each of the four
//! technologies, plus the allreduce algorithm-pair microbenches):
//!
//! 1. **serial** — `Executor::new(1)`, with each point timed
//!    individually (the per-point table in the JSON);
//! 2. **parallel** — the auto worker count (or `--jobs`/`ACC_JOBS`),
//!    wall-timed as one batch.
//!
//! The simulated results of both passes are asserted identical — the
//! executor's determinism contract, checked on every invocation — and
//! the JSON records both wall times plus the measured speedup. On a
//! single-core host (`host_parallelism: 1`) the parallel pass degrades
//! to the serial loop and the speedup hovers around 1.
//!
//! ```text
//! cargo run --release -p acc-bench --bin bench_wallclock            # full
//! cargo run --release -p acc-bench --bin bench_wallclock -- --smoke # CI
//! ```
//!
//! `--smoke` shrinks every point (seconds, not minutes), writes
//! `BENCH_campaign.smoke.json` instead, and is wired into
//! `scripts/check.sh` so the executor's two code paths are exercised on
//! every push; the timings are recorded, never gated on.
//!
//! Every invocation also appends one line to the append-only
//! `BENCH_history.jsonl` at the repository root (per-point serial
//! microseconds, keyed by mode), and `--check` compares the current run
//! against the last recorded entry of the same mode: a >25% median
//! slowdown across points prints a loud warning. The warning never
//! fails the build — on shared CI runners wall time is too noisy to
//! gate on — but it makes creeping regressions visible in the log
//! instead of silently accumulating.

use std::fmt::Write as _;
use std::time::{Instant, SystemTime};

use acc_bench::{executor, figure_spec, Executor};
use acc_coll::{Algorithm, CollectiveOp};
use acc_core::cluster::Technology;
use acc_core::{RunOutcome, RunRequest};

const TECHNOLOGIES: [Technology; 4] = [
    Technology::GigabitTcp,
    Technology::InicIdeal,
    Technology::InicPrototype,
    Technology::InicProtocol,
];

fn tech_label(t: Technology) -> &'static str {
    match t {
        Technology::FastEthernet => "fast",
        Technology::GigabitTcp => "gigabit",
        Technology::InicIdeal => "inic-ideal",
        Technology::InicPrototype => "inic-proto",
        Technology::InicProtocol => "inic-pp",
    }
}

/// The run matrix: one sort and one FFT point per technology, plus the
/// collective microbench points (ring vs recursive-doubling allreduce,
/// small vs large vectors, host-TCP vs combined INIC).
fn points(smoke: bool) -> Vec<(String, RunRequest)> {
    // Smoke sizes finish in seconds on one core; full sizes are the
    // campaign scale the figures actually run at.
    let (p, keys, rows) = if smoke {
        (4usize, 1u64 << 14, 32usize)
    } else {
        (8, 1 << 24, 512)
    };
    let mut out = Vec::new();
    for tech in TECHNOLOGIES {
        out.push((
            format!("sort_2e{}_{}_p{p}", keys.ilog2(), tech_label(tech)),
            RunRequest::sort(figure_spec(p, tech), keys),
        ));
        out.push((
            format!("fft_{rows}_{}_p{p}", tech_label(tech)),
            RunRequest::fft(figure_spec(p, tech), rows),
        ));
    }
    // Allreduce algorithm pair: the latency-bound size where recursive
    // doubling should win, and the bandwidth-bound size where the ring
    // should win, on both a host path and the combined INIC.
    let coll_cells: &[(usize, usize)] = if smoke {
        &[(4, 1 << 10), (4, 1 << 14)]
    } else {
        &[(8, 1 << 10), (8, 1 << 17), (16, 1 << 17)]
    };
    for &(p, elems) in coll_cells {
        for algo in [Algorithm::Ring, Algorithm::RecursiveDoubling] {
            for tech in [Technology::GigabitTcp, Technology::InicIdeal] {
                out.push((
                    format!(
                        "allreduce_{}_2e{}_{}_p{p}",
                        algo.label(),
                        elems.ilog2(),
                        tech_label(tech)
                    ),
                    RunRequest::collective(
                        figure_spec(p, tech),
                        CollectiveOp::AllReduce,
                        algo,
                        elems,
                    ),
                ));
            }
        }
    }
    out
}

/// Simulated-result fingerprint for the determinism cross-check.
fn fingerprint(outcomes: &[RunOutcome]) -> Vec<u64> {
    outcomes.iter().map(|o| o.total().as_ps()).collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One line of `BENCH_history.jsonl`: flat, greppable, append-only.
fn history_line(mode: &str, jobs: usize, per_point: &[(&str, f64)], parallel_secs: f64) -> String {
    let unix_secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"unix_secs\": {unix_secs}, \"mode\": \"{mode}\", \"jobs\": {jobs}, \"serial_us\": {{"
    );
    for (i, (label, secs)) in per_point.iter().enumerate() {
        let comma = if i + 1 < per_point.len() { ", " } else { "" };
        let _ = write!(
            line,
            "\"{}\": {}{comma}",
            json_escape(label),
            (secs * 1e6).round() as u64
        );
    }
    let _ = write!(
        line,
        "}}, \"parallel_us\": {}}}",
        (parallel_secs * 1e6).round() as u64
    );
    line
}

/// Parse the `"serial_us": {"label": us, ...}` map out of one history
/// line. Hand-rolled for the fixed shape `history_line` writes — not a
/// general JSON parser.
fn parse_history_points(line: &str) -> Vec<(String, u64)> {
    let Some(start) = line.find("\"serial_us\": {") else {
        return Vec::new();
    };
    let body = &line[start + "\"serial_us\": {".len()..];
    let Some(end) = body.find('}') else {
        return Vec::new();
    };
    body[..end]
        .split(", ")
        .filter_map(|pair| {
            let (label, us) = pair.split_once("\": ")?;
            Some((label.trim_start_matches('"').to_string(), us.parse().ok()?))
        })
        .collect()
}

/// Compare this run's per-point serial times against the last history
/// entry of the same mode; print a non-gating warning if the median
/// slowdown exceeds 25%.
fn check_against_history(history: &str, mode: &str, per_point: &[(&str, f64)]) {
    let Some(prev) = history
        .lines()
        .rev()
        .find(|l| l.contains(&format!("\"mode\": \"{mode}\"")))
    else {
        println!("bench --check: no prior {mode} entry in BENCH_history.jsonl; nothing to compare");
        return;
    };
    let prev_points = parse_history_points(prev);
    let mut ratios: Vec<f64> = per_point
        .iter()
        .filter_map(|(label, secs)| {
            let (_, prev_us) = prev_points.iter().find(|(l, _)| l == label)?;
            if *prev_us == 0 {
                return None;
            }
            Some(secs * 1e6 / *prev_us as f64)
        })
        .collect();
    if ratios.is_empty() {
        println!("bench --check: no overlapping points with the last {mode} entry");
        return;
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median = ratios[ratios.len() / 2];
    if median > 1.25 {
        println!(
            "WARNING: bench --check: median serial time is {:.0}% slower than the last \
             recorded {mode} run ({} of {} points compared). Not gating — wall time is \
             noisy — but worth a look before merging.",
            (median - 1.0) * 100.0,
            ratios.len(),
            per_point.len()
        );
    } else {
        println!(
            "bench --check: median ratio {median:.2}x vs last {mode} entry ({} points) — ok",
            ratios.len()
        );
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check = std::env::args().any(|a| a == "--check");
    let ex = Executor::from_cli();
    let matrix = points(smoke);
    let labels: Vec<&str> = matrix.iter().map(|(l, _)| l.as_str()).collect();

    // Pass 1: serial, each point timed on its own.
    let serial_ex = Executor::serial();
    let mut per_point = Vec::new();
    let mut serial_outcomes = Vec::new();
    let serial_started = Instant::now();
    for (label, request) in &matrix {
        let started = Instant::now();
        let mut outcome = serial_ex.run_all(vec![request.clone()]);
        per_point.push((label.as_str(), started.elapsed().as_secs_f64()));
        serial_outcomes.append(&mut outcome);
    }
    let serial_secs = serial_started.elapsed().as_secs_f64();

    // Pass 2: the same matrix as one parallel batch.
    let parallel_started = Instant::now();
    let parallel_outcomes = ex.run_all(matrix.iter().map(|(_, r)| r.clone()).collect());
    let parallel_secs = parallel_started.elapsed().as_secs_f64();

    assert_eq!(
        fingerprint(&serial_outcomes),
        fingerprint(&parallel_outcomes),
        "parallel outcomes diverged from serial — determinism contract broken"
    );

    let speedup = serial_secs / parallel_secs;
    let mode = if smoke { "smoke" } else { "full" };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p acc-bench --bin bench_wallclock{}\",",
        if smoke { " -- --smoke" } else { "" }
    );
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        executor::default_parallelism()
    );
    let _ = writeln!(json, "  \"jobs\": {},", ex.jobs());
    let _ = writeln!(json, "  \"points\": [");
    for (i, (label, secs)) in per_point.iter().enumerate() {
        let comma = if i + 1 < per_point.len() { "," } else { "" };
        // `serial_secs` is kept for readers of the old shape; `serial_us`
        // is the authoritative value — smoke points finish in hundreds of
        // microseconds and used to flatten to "0.000".
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"serial_secs\": {secs:.3}, \"serial_us\": {}}}{comma}",
            json_escape(label),
            (secs * 1e6).round() as u64
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.3},");
    let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3}");
    let _ = writeln!(json, "}}");

    let file = if smoke {
        "BENCH_campaign.smoke.json"
    } else {
        "BENCH_campaign.json"
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    let path = path.canonicalize().unwrap_or(path);

    // History: compare first (against the previous entry), then append
    // this run, so `--check` never compares a run against itself.
    let history_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_history.jsonl");
    let history = std::fs::read_to_string(&history_path).unwrap_or_default();
    if check {
        check_against_history(&history, mode, &per_point);
    }
    let entry = history_line(mode, ex.jobs(), &per_point, parallel_secs);
    let mut appended = history;
    appended.push_str(&entry);
    appended.push('\n');
    std::fs::write(&history_path, appended)
        .unwrap_or_else(|e| panic!("appending {}: {e}", history_path.display()));

    println!("# campaign wall-clock ({mode}): {} points", labels.len());
    for (label, secs) in &per_point {
        println!("{label:<28} {:>8.3} s", secs);
    }
    println!(
        "serial {serial_secs:.3} s | parallel {parallel_secs:.3} s (jobs={}) | speedup {speedup:.2}x",
        ex.jobs()
    );
    println!("wrote {}", path.display());
}
