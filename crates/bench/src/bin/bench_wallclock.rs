//! Wall-clock baseline for the campaign executor: how long the
//! representative campaign points take serially vs fanned across the
//! machine, written as `BENCH_campaign.json` at the repository root.
//!
//! Two passes over the same run matrix (sort + FFT on each of the four
//! technologies, plus the allreduce algorithm-pair microbenches):
//!
//! 1. **serial** — `Executor::new(1)`, with each point timed
//!    individually (the per-point table in the JSON);
//! 2. **parallel** — the auto worker count (or `--jobs`/`ACC_JOBS`),
//!    wall-timed as one batch.
//!
//! The simulated results of both passes are asserted identical — the
//! executor's determinism contract, checked on every invocation — and
//! the JSON records both wall times plus the measured speedup. On a
//! single-core host (`host_parallelism: 1`) the parallel pass degrades
//! to the serial loop and the speedup hovers around 1.
//!
//! ```text
//! cargo run --release -p acc-bench --bin bench_wallclock            # full
//! cargo run --release -p acc-bench --bin bench_wallclock -- --smoke # CI
//! ```
//!
//! `--smoke` shrinks every point (seconds, not minutes), writes
//! `BENCH_campaign.smoke.json` instead, and is wired into
//! `scripts/check.sh` so the executor's two code paths are exercised on
//! every push.
//!
//! Every invocation also appends one line to the append-only
//! `BENCH_history.jsonl` at the repository root (per-point serial
//! microseconds, keyed by mode). `--check` gates: each point is
//! compared against the **median of the last five same-mode entries**,
//! and any point more than `ACC_BENCH_TOLERANCE_PCT` (default 25%)
//! slower fails the run with exit 1. The median baseline absorbs one
//! noisy historical run; the escape hatch `ACC_BENCH_GATE=off` reports
//! without gating for hosts whose wall clock is known-noisy. The run
//! is appended to the history before the gate fires, so a re-run after
//! a fix compares against honest data.

use std::fmt::Write as _;
use std::time::{Instant, SystemTime};

use acc_bench::{executor, figure_spec, Executor};
use acc_coll::{Algorithm, CollectiveOp};
use acc_core::cluster::Technology;
use acc_core::{RunOutcome, RunRequest};
use acc_net::FabricSpec;

const TECHNOLOGIES: [Technology; 4] = [
    Technology::GigabitTcp,
    Technology::InicIdeal,
    Technology::InicPrototype,
    Technology::InicProtocol,
];

fn tech_label(t: Technology) -> &'static str {
    match t {
        Technology::FastEthernet => "fast",
        Technology::GigabitTcp => "gigabit",
        Technology::InicIdeal => "inic-ideal",
        Technology::InicPrototype => "inic-proto",
        Technology::InicProtocol => "inic-pp",
    }
}

/// The run matrix: one sort and one FFT point per technology, plus the
/// collective microbench points (ring vs recursive-doubling allreduce,
/// small vs large vectors, host-TCP vs combined INIC).
fn points(smoke: bool) -> Vec<(String, RunRequest)> {
    // Smoke sizes finish in seconds on one core; full sizes are the
    // campaign scale the figures actually run at.
    let (p, keys, rows) = if smoke {
        (4usize, 1u64 << 14, 32usize)
    } else {
        (8, 1 << 24, 512)
    };
    let mut out = Vec::new();
    for tech in TECHNOLOGIES {
        out.push((
            format!("sort_2e{}_{}_p{p}", keys.ilog2(), tech_label(tech)),
            RunRequest::sort(figure_spec(p, tech), keys),
        ));
        out.push((
            format!("fft_{rows}_{}_p{p}", tech_label(tech)),
            RunRequest::fft(figure_spec(p, tech), rows),
        ));
    }
    // Allreduce algorithm pair: the latency-bound size where recursive
    // doubling should win, and the bandwidth-bound size where the ring
    // should win, on both a host path and the combined INIC.
    let coll_cells: &[(usize, usize)] = if smoke {
        &[(4, 1 << 10), (4, 1 << 14)]
    } else {
        &[(8, 1 << 10), (8, 1 << 17), (16, 1 << 17)]
    };
    for &(p, elems) in coll_cells {
        for algo in [Algorithm::Ring, Algorithm::RecursiveDoubling] {
            for tech in [Technology::GigabitTcp, Technology::InicIdeal] {
                out.push((
                    format!(
                        "allreduce_{}_2e{}_{}_p{p}",
                        algo.label(),
                        elems.ilog2(),
                        tech_label(tech)
                    ),
                    RunRequest::collective(
                        figure_spec(p, tech),
                        CollectiveOp::AllReduce,
                        algo,
                        elems,
                    ),
                ));
            }
        }
    }
    // Multi-switch fabric points. `fabric_hop` prices the routed
    // multi-hop path (fat-tree allreduce, every round crossing trunks)
    // against the flat single-switch points above; `trunk_contention`
    // funnels an all-to-all through a torus's few ring trunks, the
    // worst case for per-hop queueing. Both run the cluster's full
    // routing machinery, so table construction cost is in the number.
    let (fabric, fabric_p, torus, torus_p, fabric_elems) = if smoke {
        (
            FabricSpec::FatTree { k: 4 },
            16usize,
            FabricSpec::Torus3D { dims: [2, 2, 1] },
            4usize,
            1usize << 10,
        )
    } else {
        (
            FabricSpec::FatTree { k: 8 },
            64,
            FabricSpec::Torus3D { dims: [2, 2, 2] },
            8,
            1 << 14,
        )
    };
    out.push((
        format!("fabric_hop_p{fabric_p}"),
        RunRequest::collective(
            figure_spec(fabric_p, Technology::InicIdeal).with_fabric(fabric),
            CollectiveOp::AllReduce,
            Algorithm::Ring,
            fabric_elems,
        ),
    ));
    out.push((
        format!("trunk_contention_p{torus_p}"),
        RunRequest::collective(
            figure_spec(torus_p, Technology::InicIdeal).with_fabric(torus),
            CollectiveOp::AllToAll,
            Algorithm::Bruck,
            fabric_elems.min(1 << 12),
        ),
    ));
    out
}

/// Simulated-result fingerprint for the determinism cross-check.
fn fingerprint(outcomes: &[RunOutcome]) -> Vec<u64> {
    outcomes.iter().map(|o| o.total().as_ps()).collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// One line of `BENCH_history.jsonl`: flat, greppable, append-only.
fn history_line(mode: &str, jobs: usize, per_point: &[(&str, f64)], parallel_secs: f64) -> String {
    let unix_secs = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"unix_secs\": {unix_secs}, \"mode\": \"{mode}\", \"jobs\": {jobs}, \"serial_us\": {{"
    );
    for (i, (label, secs)) in per_point.iter().enumerate() {
        let comma = if i + 1 < per_point.len() { ", " } else { "" };
        let _ = write!(
            line,
            "\"{}\": {}{comma}",
            json_escape(label),
            (secs * 1e6).round() as u64
        );
    }
    let _ = write!(
        line,
        "}}, \"parallel_us\": {}}}",
        (parallel_secs * 1e6).round() as u64
    );
    line
}

/// Parse the `"serial_us": {"label": us, ...}` map out of one history
/// line. Hand-rolled for the fixed shape `history_line` writes — not a
/// general JSON parser.
fn parse_history_points(line: &str) -> Vec<(String, u64)> {
    let Some(start) = line.find("\"serial_us\": {") else {
        return Vec::new();
    };
    let body = &line[start + "\"serial_us\": {".len()..];
    let Some(end) = body.find('}') else {
        return Vec::new();
    };
    body[..end]
        .split(", ")
        .filter_map(|pair| {
            let (label, us) = pair.split_once("\": ")?;
            Some((label.trim_start_matches('"').to_string(), us.parse().ok()?))
        })
        .collect()
}

/// Compare this run's per-point serial times against the median of the
/// last (up to) five same-mode history entries. Gating: returns `false`
/// when any point regresses beyond the noise bound
/// (`ACC_BENCH_TOLERANCE_PCT`, default 25%). The median baseline makes
/// the gate robust to one noisy historical run; the per-point bound
/// catches a single benchmark regressing while the rest hide it.
fn check_against_history(history: &str, mode: &str, per_point: &[(&str, f64)]) -> bool {
    let tolerance_pct: f64 = std::env::var("ACC_BENCH_TOLERANCE_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25.0);
    let prev_runs: Vec<Vec<(String, u64)>> = history
        .lines()
        .rev()
        .filter(|l| l.contains(&format!("\"mode\": \"{mode}\"")))
        .take(5)
        .map(parse_history_points)
        .collect();
    if prev_runs.is_empty() {
        println!("bench --check: no prior {mode} entry in BENCH_history.jsonl; nothing to compare");
        return true;
    }
    let mut compared = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for (label, secs) in per_point {
        let mut baseline: Vec<u64> = prev_runs
            .iter()
            .filter_map(|run| run.iter().find(|(l, _)| l == label).map(|&(_, us)| us))
            .filter(|&us| us > 0)
            .collect();
        if baseline.is_empty() {
            continue;
        }
        baseline.sort_unstable();
        let median_us = baseline[baseline.len() / 2] as f64;
        let ratio = secs * 1e6 / median_us;
        compared += 1;
        if ratio > 1.0 + tolerance_pct / 100.0 {
            failures.push(format!(
                "  {label}: {:.0}% slower than the median of the last {} {mode} run(s) \
                 ({:.0} us vs {median_us:.0} us)",
                (ratio - 1.0) * 100.0,
                baseline.len(),
                secs * 1e6
            ));
        }
    }
    if compared == 0 {
        println!("bench --check: no overlapping points with recent {mode} entries");
        return true;
    }
    if failures.is_empty() {
        println!(
            "bench --check: {compared} point(s) within {tolerance_pct:.0}% of their \
             {mode} history medians — ok"
        );
        return true;
    }
    println!(
        "bench --check: {} of {compared} point(s) regressed past the {tolerance_pct:.0}% \
         noise bound vs BENCH_history.jsonl:",
        failures.len()
    );
    for f in &failures {
        println!("{f}");
    }
    false
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let check = std::env::args().any(|a| a == "--check");
    let ex = Executor::from_cli();
    let matrix = points(smoke);
    let labels: Vec<&str> = matrix.iter().map(|(l, _)| l.as_str()).collect();

    // Pass 1: serial, each point timed on its own.
    let serial_ex = Executor::serial();
    let mut per_point = Vec::new();
    let mut serial_outcomes = Vec::new();
    let serial_started = Instant::now();
    for (label, request) in &matrix {
        let started = Instant::now();
        let mut outcome = serial_ex.run_all(vec![request.clone()]);
        per_point.push((label.as_str(), started.elapsed().as_secs_f64()));
        serial_outcomes.append(&mut outcome);
    }
    let serial_secs = serial_started.elapsed().as_secs_f64();

    // Pass 2: the same matrix as one parallel batch.
    let parallel_started = Instant::now();
    let parallel_outcomes = ex.run_all(matrix.iter().map(|(_, r)| r.clone()).collect());
    let parallel_secs = parallel_started.elapsed().as_secs_f64();

    assert_eq!(
        fingerprint(&serial_outcomes),
        fingerprint(&parallel_outcomes),
        "parallel outcomes diverged from serial — determinism contract broken"
    );

    let speedup = serial_secs / parallel_secs;
    let mode = if smoke { "smoke" } else { "full" };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p acc-bench --bin bench_wallclock{}\",",
        if smoke { " -- --smoke" } else { "" }
    );
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        executor::default_parallelism()
    );
    let _ = writeln!(json, "  \"jobs\": {},", ex.jobs());
    let _ = writeln!(json, "  \"points\": [");
    for (i, (label, secs)) in per_point.iter().enumerate() {
        let comma = if i + 1 < per_point.len() { "," } else { "" };
        // `serial_secs` is kept for readers of the old shape; `serial_us`
        // is the authoritative value — smoke points finish in hundreds of
        // microseconds and used to flatten to "0.000".
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"serial_secs\": {secs:.3}, \"serial_us\": {}}}{comma}",
            json_escape(label),
            (secs * 1e6).round() as u64
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.3},");
    let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3}");
    let _ = writeln!(json, "}}");

    let file = if smoke {
        "BENCH_campaign.smoke.json"
    } else {
        "BENCH_campaign.json"
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    let path = path.canonicalize().unwrap_or(path);

    // History: compare first (against the previous entry), then append
    // this run, so `--check` never compares a run against itself.
    let history_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_history.jsonl");
    let history = std::fs::read_to_string(&history_path).unwrap_or_default();
    let check_ok = if check {
        check_against_history(&history, mode, &per_point)
    } else {
        true
    };
    let entry = history_line(mode, ex.jobs(), &per_point, parallel_secs);
    let mut appended = history;
    appended.push_str(&entry);
    appended.push('\n');
    std::fs::write(&history_path, appended)
        .unwrap_or_else(|e| panic!("appending {}: {e}", history_path.display()));
    println!("# campaign wall-clock ({mode}): {} points", labels.len());
    for (label, secs) in &per_point {
        println!("{label:<28} {:>8.3} s", secs);
    }
    println!(
        "serial {serial_secs:.3} s | parallel {parallel_secs:.3} s (jobs={}) | speedup {speedup:.2}x",
        ex.jobs()
    );
    println!("wrote {}", path.display());
    if !check_ok {
        // The regression is already appended to the history, so a
        // re-run after a fix compares against honest data.
        if std::env::var("ACC_BENCH_GATE").as_deref() == Ok("off") {
            println!("bench --check: ACC_BENCH_GATE=off — regression reported, not gated");
        } else {
            eprintln!(
                "bench --check: FAILED — wall-time regression past the noise bound \
                 (set ACC_BENCH_GATE=off to report without gating, or \
                 ACC_BENCH_TOLERANCE_PCT to widen the bound)"
            );
            std::process::exit(1);
        }
    }
}
