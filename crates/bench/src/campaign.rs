//! The fault-injection campaign behind the `ablation_faults` binary.
//!
//! Sweeps uniform frame-loss probability across every link of the star
//! for each technology, runs the integer sort with result verification
//! **on** (the point of the campaign is that the answer stays right),
//! and reports completion time, goodput, and recovery effort. The
//! whole campaign is deterministic: the [`FaultPlan`] seed fixes every
//! per-link loss sequence, so two runs of the same configuration
//! produce byte-identical reports.

use acc_chaos::{FaultEvent, FaultPlan, LinkId};
use acc_core::cluster::{ClusterSpec, Technology};
use acc_core::report::{FigureReport, Series};
use acc_core::RunRequest;

use crate::Executor;

/// One campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Cluster size.
    pub p: usize,
    /// Total keys sorted (spread evenly over the nodes).
    pub total_keys: u64,
    /// Fault-plan seed — fixes every per-link loss sequence.
    pub seed: u64,
    /// Frame-loss probabilities to sweep, in percent (0 = pristine).
    pub loss_pcts: Vec<f64>,
    /// Technologies under test.
    pub technologies: Vec<Technology>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            p: 4,
            total_keys: 1 << 16,
            seed: 0xFA17,
            loss_pcts: vec![0.0, 0.5, 1.0, 2.0, 5.0],
            technologies: vec![Technology::GigabitTcp, Technology::InicIdeal],
        }
    }
}

/// Short legend label for a technology.
fn tech_label(t: Technology) -> &'static str {
    match t {
        Technology::FastEthernet => "Fast",
        Technology::GigabitTcp => "Gigabit",
        Technology::InicIdeal => "INIC",
        Technology::InicPrototype => "INIC-proto",
        Technology::InicProtocol => "INIC-pp",
    }
}

/// Describe one campaign point as an executable request.
fn point_request(cfg: &CampaignConfig, technology: Technology, loss_pct: f64) -> RunRequest {
    let mut spec = ClusterSpec::new(cfg.p, technology);
    // A plan is always attached — at 0% loss it costs nothing on the
    // links but keeps the recovery protocol armed, so the 0% column
    // doubles as the protocol-overhead baseline.
    let mut plan = FaultPlan::new(cfg.seed);
    if loss_pct > 0.0 {
        plan.push(FaultEvent::FrameLoss {
            link: LinkId::All,
            prob: loss_pct / 100.0,
        });
    }
    spec = spec.with_fault_plan(plan);
    RunRequest::sort(spec, cfg.total_keys)
}

/// Run the full sweep and collect it into one report: per technology, a
/// completion-time series (ms), a goodput series (application MiB
/// sorted per second of wall time), and a retransmission-count series,
/// over the loss-percentage axis.
///
/// Every `(technology, loss)` point is independent, so the whole matrix
/// fans out across `ex`; the report is assembled from results in
/// submission order and is byte-identical at any worker count.
pub fn fault_campaign(ex: &Executor, cfg: &CampaignConfig) -> FigureReport {
    let mut report = FigureReport::new(
        "Fault campaign",
        format!(
            "Integer sort of 2^{} keys on P={} under uniform frame loss (plan seed {:#x})",
            cfg.total_keys.ilog2(),
            cfg.p,
            cfg.seed,
        ),
        "loss %",
        "per-series units: ms | MiB/s | count",
    );
    let app_mib = cfg.total_keys as f64 * 4.0 / (1024.0 * 1024.0);
    let requests: Vec<RunRequest> = cfg
        .technologies
        .iter()
        .flat_map(|&tech| cfg.loss_pcts.iter().map(move |&pct| (tech, pct)))
        .map(|(tech, pct)| point_request(cfg, tech, pct))
        .collect();
    let mut outcomes = ex.run_all(requests).into_iter();
    for &tech in &cfg.technologies {
        let mut time_ms = Series::new(format!("{} time (ms)", tech_label(tech)));
        let mut goodput = Series::new(format!("{} goodput (MiB/s)", tech_label(tech)));
        let mut retrans = Series::new(format!("{} retransmits", tech_label(tech)));
        for &pct in &cfg.loss_pcts {
            let r = outcomes
                .next()
                .expect("one outcome per submitted point")
                .into_sort();
            assert!(r.verified, "campaign point must still sort correctly");
            let secs = r.total.as_secs_f64();
            time_ms.push(pct, secs * 1e3);
            goodput.push(pct, app_mib / secs);
            retrans.push(pct, r.faults.retransmits as f64);
        }
        report.add(time_ms);
        report.add(goodput);
        report.add(retrans);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_point_has_no_retransmits() {
        let cfg = CampaignConfig {
            loss_pcts: vec![0.0],
            technologies: vec![Technology::GigabitTcp, Technology::InicIdeal],
            ..CampaignConfig::default()
        };
        let report = fault_campaign(&Executor::serial(), &cfg);
        for s in report.series.iter().filter(|s| s.name.contains("retrans")) {
            assert_eq!(s.at(0.0), Some(0.0), "{}", s.name);
        }
    }
}
