//! # acc-bench — figure regenerators and benchmarks
//!
//! One binary per evaluation figure in the paper (`fig4a`, `fig4b`,
//! `fig5a`, `fig5b`, `fig8a`, `fig8b`), two ablation binaries, and three
//! criterion benchmark suites over the real kernels and the simulation
//! engine. See `EXPERIMENTS.md` at the repository root for the
//! paper-vs-measured record of every figure.
//!
//! ## Conventions
//!
//! * Speedups are always relative to the **serial baseline**: the
//!   simulated single-processor Gigabit run, which exercises no network
//!   and equals a plain serial execution of the application (or, for
//!   the analytic INIC curves, the model's own serial term built from
//!   the identical kernel calibration).
//! * Simulated points sweep `P ∈ {1, 2, 4, 8, 16}` — power-of-two node
//!   counts, which both workloads require for even partitioning; the
//!   paper itself notes its non-power-of-two INIC points are
//!   interpolated "strictly to smooth the curve".
//! * Figure workloads run with result verification off (the serial
//!   oracle at 2²⁵ keys costs more than the experiment); correctness at
//!   these scales is covered by the integration test suite.

#![forbid(unsafe_code)]

use acc_core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc_core::report::Series;
use acc_core::RunRequest;

pub mod campaign;
pub mod executor;
pub mod harness;
pub mod repro;

pub use executor::Executor;

/// The simulated processor sweep.
pub const SIM_PROCS: [usize; 5] = [1, 2, 4, 8, 16];

/// A spec with verification disabled for large figure workloads.
pub fn figure_spec(p: usize, technology: Technology) -> ClusterSpec {
    let mut spec = ClusterSpec::new(p, technology);
    spec.verify = false;
    spec
}

/// Simulated FFT total times over the sweep, fanned across `ex`.
pub fn fft_totals(ex: &Executor, technology: Technology, rows: usize) -> Vec<(usize, f64)> {
    let requests = SIM_PROCS
        .iter()
        .map(|&p| RunRequest::fft(figure_spec(p, technology), rows))
        .collect();
    SIM_PROCS
        .iter()
        .zip(ex.run_all(requests))
        .map(|(&p, outcome)| (p, outcome.total().as_secs_f64()))
        .collect()
}

/// Simulated FFT speedup series for one technology, normalised to the
/// serial (Gigabit P=1) time.
pub fn fft_speedup_series(
    ex: &Executor,
    name: &str,
    technology: Technology,
    rows: usize,
    serial: f64,
) -> Series {
    let mut s = Series::new(name);
    for (p, t) in fft_totals(ex, technology, rows) {
        s.push(p as f64, serial / t);
    }
    s
}

/// The serial FFT baseline: simulated Gigabit run at P=1 (no network
/// activity — pure compute + local transposes).
pub fn fft_serial_time(rows: usize) -> f64 {
    run_fft(figure_spec(1, Technology::GigabitTcp), rows)
        .total
        .as_secs_f64()
}

/// Simulated sort total times over the sweep, fanned across `ex`.
pub fn sort_totals(ex: &Executor, technology: Technology, total_keys: u64) -> Vec<(usize, f64)> {
    let requests = SIM_PROCS
        .iter()
        .map(|&p| RunRequest::sort(figure_spec(p, technology), total_keys))
        .collect();
    SIM_PROCS
        .iter()
        .zip(ex.run_all(requests))
        .map(|(&p, outcome)| (p, outcome.total().as_secs_f64()))
        .collect()
}

/// The serial sort baseline: simulated Gigabit run at P=1.
pub fn sort_serial_time(total_keys: u64) -> f64 {
    run_sort(figure_spec(1, Technology::GigabitTcp), total_keys)
        .total
        .as_secs_f64()
}

/// Simulated sort speedup series for one technology.
pub fn sort_speedup_series(
    ex: &Executor,
    name: &str,
    technology: Technology,
    total_keys: u64,
    serial: f64,
) -> Series {
    let mut s = Series::new(name);
    for (p, t) in sort_totals(ex, technology, total_keys) {
        s.push(p as f64, serial / t);
    }
    s
}

/// Partition-size series in KiB (the right-hand axes of Figs. 4(b) and
/// 5(a)).
pub fn partition_series(name: &str, total_bytes: u64) -> Series {
    let mut s = Series::new(name);
    for &p in &SIM_PROCS {
        s.push(p as f64, total_bytes as f64 / p as f64 / 1024.0);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_baseline_is_positive_and_stable() {
        let a = fft_serial_time(64);
        let b = fft_serial_time(64);
        assert!(a > 0.0);
        assert_eq!(a, b);
    }

    #[test]
    fn partition_series_halves_per_doubling() {
        let s = partition_series("S", 1 << 20);
        assert_eq!(s.at(1.0), Some(1024.0));
        assert_eq!(s.at(2.0), Some(512.0));
        assert_eq!(s.at(16.0), Some(64.0));
    }

    #[test]
    fn speedup_series_has_all_sweep_points() {
        let ex = Executor::serial();
        let serial = fft_serial_time(64);
        let s = fft_speedup_series(&ex, "x", Technology::InicIdeal, 64, serial);
        assert_eq!(s.points.len(), SIM_PROCS.len());
        // P=1 speedup close to 1 for the technology whose baseline this is.
        let own = fft_speedup_series(&ex, "g", Technology::GigabitTcp, 64, serial);
        let s1 = own.at(1.0).unwrap();
        assert!((s1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_identical_serial_and_parallel() {
        // The executor determinism contract on a real workload: the
        // whole sweep, serial vs 4 workers, to the last bit.
        let serial = sort_totals(&Executor::serial(), Technology::InicIdeal, 1 << 12);
        let parallel = sort_totals(&Executor::new(4), Technology::InicIdeal, 1 << 12);
        assert_eq!(serial, parallel);
    }
}
