//! Self-contained repro artifacts for failing chaos runs.
//!
//! When the soak campaign trips over a failure — a hang, a diverged
//! result, an Auditor violation — the offending fault plan is
//! automatically minimized ([`minimize_failure`], delta debugging over
//! the deterministic simulator) and the whole failing cell is written
//! out as a plain-text **repro artifact**: cluster size, technology,
//! workload, the expected and observed outcomes, and the minimized
//! plan. `soak --repro <file>` replays the artifact in a fresh process
//! and checks that the *same* failure reproduces, so a nightly CI
//! failure travels as one small file that any machine can replay.
//!
//! ```text
//! # acc soak repro v1
//! campaign-seed 0xacc50ac
//! round 7
//! p 4
//! technology inic-ideal
//! workload sort 16384
//! expected verified completion
//! observed hung: simulated-time deadline exceeded; stuck in exchange on rank 2
//! # minimized fault plan
//! seed 0x93c4...
//! link-outage link=up:2 from=1000000 until=30000000000000
//! ```
//!
//! Everything here is deterministic: the observation string for a
//! given `(spec, plan, workload)` is a pure function of the simulation,
//! and the minimizer consumes oracle verdicts batch-wise in submission
//! order (see `acc-chaos`), so `--jobs 1` and `--jobs 4` produce
//! byte-identical artifacts.

use acc_chaos::FaultPlan;
use acc_coll::{Algorithm, CollectiveOp};
use acc_core::{ClusterSpec, RunOutcome, RunRequest, Technology, Workload};
use acc_net::FabricSpec;
use acc_sim::SimTime;

use crate::executor::Executor;

/// What a failing run was expected to do. One canonical string so
/// artifacts diff cleanly.
pub const EXPECTED_CLEAN: &str = "verified completion";

/// The workload of one soak cell, in artifact-codable form.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReproWorkload {
    /// Integer sort of `keys` keys.
    Sort {
        /// Total keys across the cluster.
        keys: u64,
    },
    /// 2D FFT on a `rows × rows` matrix.
    Fft {
        /// Matrix dimension.
        rows: usize,
    },
    /// One engine collective over an `elems`-element f64 vector.
    Coll {
        /// The collective operation.
        op: CollectiveOp,
        /// The schedule algorithm.
        algo: Algorithm,
        /// Vector elements per rank.
        elems: usize,
    },
}

impl ReproWorkload {
    /// The artifact line fragment: `sort 16384` / `fft 32` /
    /// `coll allreduce ring 4096`.
    pub fn label(self) -> String {
        match self {
            ReproWorkload::Sort { keys } => format!("sort {keys}"),
            ReproWorkload::Fft { rows } => format!("fft {rows}"),
            ReproWorkload::Coll { op, algo, elems } => {
                format!("coll {} {} {elems}", op.label(), algo.label())
            }
        }
    }

    fn parse(v: &str, ln: usize) -> Result<ReproWorkload, String> {
        let (kind, rest) = v
            .split_once(' ')
            .ok_or_else(|| format!("line {ln}: workload needs '<kind> <size>', got '{v}'"))?;
        match kind {
            "sort" => rest
                .parse()
                .map(|keys| ReproWorkload::Sort { keys })
                .map_err(|_| format!("line {ln}: bad sort key count '{rest}'")),
            "fft" => rest
                .parse()
                .map(|rows| ReproWorkload::Fft { rows })
                .map_err(|_| format!("line {ln}: bad fft rows '{rest}'")),
            "coll" => {
                let mut parts = rest.split(' ');
                let (Some(op), Some(algo), Some(elems), None) =
                    (parts.next(), parts.next(), parts.next(), parts.next())
                else {
                    return Err(format!(
                        "line {ln}: coll workload needs '<op> <algo> <elems>', got '{rest}'"
                    ));
                };
                let op = CollectiveOp::parse(op)
                    .ok_or_else(|| format!("line {ln}: unknown collective '{op}'"))?;
                let algo = Algorithm::parse(algo)
                    .ok_or_else(|| format!("line {ln}: unknown algorithm '{algo}'"))?;
                let elems = elems
                    .parse()
                    .map_err(|_| format!("line {ln}: bad element count '{elems}'"))?;
                Ok(ReproWorkload::Coll { op, algo, elems })
            }
            other => Err(format!("line {ln}: unknown workload kind '{other}'")),
        }
    }
}

impl From<ReproWorkload> for Workload {
    fn from(w: ReproWorkload) -> Workload {
        match w {
            ReproWorkload::Sort { keys } => Workload::Sort { total_keys: keys },
            ReproWorkload::Fft { rows } => Workload::Fft { rows },
            ReproWorkload::Coll { op, algo, elems } => Workload::Collective { op, algo, elems },
        }
    }
}

/// One failing soak cell, ready to be written to disk and replayed.
#[derive(Clone, PartialEq, Debug)]
pub struct ReproArtifact {
    /// The soak campaign seed the failure was found under.
    pub campaign_seed: u64,
    /// The failing round.
    pub round: u64,
    /// Cluster size.
    pub p: usize,
    /// Cluster technology.
    pub technology: Technology,
    /// The failing workload.
    pub workload: ReproWorkload,
    /// The fabric the cluster was wired with. Single-switch artifacts
    /// omit the `topology` line, so pre-fabric artifacts parse
    /// unchanged.
    pub fabric: FabricSpec,
    /// What should have happened.
    pub expected: String,
    /// What happened instead (the deterministic observation string).
    pub observed: String,
    /// The (minimized) fault plan that makes it happen.
    pub plan: FaultPlan,
}

impl ReproArtifact {
    /// Serialize to the `# acc soak repro v1` text format.
    pub fn to_text(&self) -> String {
        let topology = match self.fabric {
            FabricSpec::SingleSwitch => String::new(),
            other => format!("topology {}\n", other.label()),
        };
        format!(
            "# acc soak repro v1\n\
             campaign-seed {:#x}\n\
             round {}\n\
             p {}\n\
             technology {}\n\
             {topology}workload {}\n\
             expected {}\n\
             observed {}\n\
             # minimized fault plan\n\
             {}",
            self.campaign_seed,
            self.round,
            self.p,
            self.technology.label(),
            self.workload.label(),
            self.expected,
            self.observed,
            self.plan.to_text(),
        )
    }

    /// Parse an artifact back, validating the embedded plan against the
    /// recorded cluster size.
    ///
    /// # Errors
    /// Returns a message naming the offending line and what was wrong.
    pub fn from_text(text: &str) -> Result<ReproArtifact, String> {
        let mut campaign_seed = None;
        let mut round = None;
        let mut p: Option<usize> = None;
        let mut technology = None;
        let mut workload = None;
        let mut fabric = FabricSpec::SingleSwitch;
        let mut expected = None;
        let mut observed = None;
        let mut plan_text = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let ln = idx + 1;
            let (key, value) = line.split_once(' ').unwrap_or((line, ""));
            let value = value.trim();
            match key {
                "campaign-seed" => campaign_seed = Some(parse_u64(value, ln)?),
                "round" => round = Some(parse_u64(value, ln)?),
                "p" => {
                    p = Some(
                        value
                            .parse()
                            .map_err(|_| format!("line {ln}: bad cluster size '{value}'"))?,
                    );
                }
                "technology" => {
                    technology = Some(
                        Technology::ALL
                            .into_iter()
                            .find(|t| t.label() == value)
                            .ok_or_else(|| format!("line {ln}: unknown technology '{value}'"))?,
                    );
                }
                "workload" => workload = Some(ReproWorkload::parse(value, ln)?),
                "topology" => {
                    fabric = FabricSpec::parse(value).map_err(|e| format!("line {ln}: {e}"))?;
                }
                "expected" => expected = Some(value.to_owned()),
                "observed" => observed = Some(value.to_owned()),
                // Anything else is a fault-plan directive; collect the
                // raw lines and let the plan codec judge them.
                _ => {
                    plan_text.push_str(line);
                    plan_text.push('\n');
                }
            }
        }
        let plan = FaultPlan::from_text(&plan_text)?;
        let p = p.ok_or("missing 'p' line")?;
        fabric
            .validate(p)
            .map_err(|e| format!("topology is invalid for p={p}: {e}"))?;
        // `SimTime::MAX` as the horizon: an artifact carries no run
        // deadline, so only structural and topology checks apply.
        plan.validate_for_fabric(p as u32, SimTime::MAX, &fabric)
            .map_err(|e| format!("embedded plan is invalid for p={p}: {e}"))?;
        Ok(ReproArtifact {
            campaign_seed: campaign_seed.ok_or("missing 'campaign-seed' line")?,
            round: round.ok_or("missing 'round' line")?,
            p,
            technology: technology.ok_or("missing 'technology' line")?,
            workload: workload.ok_or("missing 'workload' line")?,
            fabric,
            expected: expected.ok_or("missing 'expected' line")?,
            observed: observed.ok_or("missing 'observed' line")?,
            plan,
        })
    }

    /// The cluster spec the artifact describes (quiet: a replay *wants*
    /// the failure, so the engine's stderr dumps are noise).
    pub fn spec(&self) -> ClusterSpec {
        ClusterSpec::new(self.p, self.technology)
            .with_fabric(self.fabric)
            .with_fault_plan(self.plan.clone())
            .with_quiet(true)
    }

    /// Re-run the artifact and check the recorded failure reproduces.
    ///
    /// # Errors
    /// `Err` describes the divergence: the run completed, or failed in
    /// a different way than the artifact recorded.
    pub fn replay(&self) -> Result<String, String> {
        let outcome = execute_caught(RunRequest {
            spec: self.spec(),
            workload: self.workload.into(),
        });
        match failure_of(&outcome) {
            Some(obs) if obs == self.observed => Ok(obs),
            Some(obs) => Err(format!(
                "replay failed differently:\n  recorded: {}\n  observed: {obs}",
                self.observed
            )),
            None => Err(format!(
                "replay did not fail: run completed verified (recorded failure was: {})",
                self.observed
            )),
        }
    }
}

fn parse_u64(v: &str, ln: usize) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("line {ln}: '{v}' is not an unsigned integer"))
}

/// Execute a run, converting a panic (Auditor violation, protocol
/// assert) into an `Err` carrying the panic message's first line.
pub fn execute_caught(req: RunRequest) -> Result<RunOutcome, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| req.execute())).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_owned());
        msg.lines().next().unwrap_or("panic").to_owned()
    })
}

/// The deterministic failure description of an outcome, or `None` if
/// the run completed and verified. This string is what repro artifacts
/// record and compare on replay, so it must depend only on the
/// simulation — never on wall clock, thread identity, or job count.
pub fn failure_of(outcome: &Result<RunOutcome, String>) -> Option<String> {
    match outcome {
        Err(msg) => Some(format!("panicked: {msg}")),
        Ok(RunOutcome::Hung(report)) => Some(format!(
            "hung: {}; stuck in {}",
            report.cause,
            report.attribution()
        )),
        Ok(outcome) if !outcome.verified() => {
            Some("result diverged from the serial oracle".to_owned())
        }
        Ok(_) => None,
    }
}

/// Run one quiet cell and report its failure, if any.
pub fn observe(spec: ClusterSpec, workload: ReproWorkload) -> Option<String> {
    failure_of(&execute_caught(RunRequest {
        spec,
        workload: workload.into(),
    }))
}

/// Minimize a failing cell's fault plan, testing candidate plans in
/// parallel on `ex`. Every candidate batch maps to one
/// [`Executor::map`] call, and verdicts come back in submission order,
/// so the reduction path — and therefore the minimized plan — is
/// byte-identical at any `--jobs` count.
///
/// "Failing" means *any* failure (hang, divergence, panic), so the
/// minimal plan pins the cheapest way to break the cell, which is the
/// right starting point for debugging. Call inside
/// [`with_silent_panics`] if the candidates' expected panics should
/// stay off stderr.
pub fn minimize_failure(
    ex: &Executor,
    p: usize,
    technology: Technology,
    workload: ReproWorkload,
    fabric: FabricSpec,
    plan: &FaultPlan,
) -> FaultPlan {
    plan.minimize(|batch| {
        let tasks: Vec<_> = batch
            .iter()
            .map(|candidate| {
                let spec = ClusterSpec::new(p, technology)
                    .with_fabric(fabric)
                    .with_fault_plan(candidate.clone())
                    .with_quiet(true);
                move || observe(spec, workload).is_some()
            })
            .collect();
        ex.map(tasks)
    })
}

/// Run `f` with the process panic hook silenced, restoring the
/// previous hook afterwards. For harness phases whose worker panics
/// are *expected* (minimizer candidates, replays): the runs are caught
/// and judged, so the default hook's stderr backtrace chatter is pure
/// noise. Swaps a process-global; do not call from concurrent threads.
pub fn with_silent_panics<T>(f: impl FnOnce() -> T) -> T {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(previous);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_chaos::{FaultEvent, LinkId};
    use acc_sim::{SimDuration, SimTime};

    fn artifact() -> ReproArtifact {
        let plan = FaultPlan::new(0x5EED).with(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(1),
            from: SimTime::ZERO + SimDuration::from_micros(1),
            until: SimTime::ZERO + SimDuration::from_secs(30),
        });
        ReproArtifact {
            campaign_seed: 0xACC_50AC,
            round: 7,
            p: 4,
            technology: Technology::InicIdeal,
            workload: ReproWorkload::Sort { keys: 1 << 14 },
            fabric: FabricSpec::SingleSwitch,
            expected: EXPECTED_CLEAN.to_owned(),
            observed: "hung: simulated-time deadline exceeded; stuck in exchange on rank 1"
                .to_owned(),
            plan,
        }
    }

    #[test]
    fn artifact_roundtrips_through_text() {
        let a = artifact();
        let text = a.to_text();
        assert_eq!(ReproArtifact::from_text(&text), Ok(a), "text was:\n{text}");
    }

    #[test]
    fn fft_workloads_roundtrip_too() {
        let mut a = artifact();
        a.workload = ReproWorkload::Fft { rows: 32 };
        assert_eq!(ReproArtifact::from_text(&a.to_text()), Ok(a));
    }

    #[test]
    fn collective_workloads_roundtrip_too() {
        let mut a = artifact();
        for op in CollectiveOp::ALL {
            for algo in op.algorithms() {
                a.workload = ReproWorkload::Coll {
                    op,
                    algo,
                    elems: 4096,
                };
                assert_eq!(
                    ReproArtifact::from_text(&a.to_text()),
                    Ok(a.clone()),
                    "{op}/{algo}"
                );
            }
        }
        let garbled = artifact().to_text().replace(
            "workload sort 16384",
            "workload coll allreduce warp-speed 4096",
        );
        let err = ReproArtifact::from_text(&garbled).unwrap_err();
        assert!(err.contains("warp-speed"), "{err}");
    }

    #[test]
    fn fabric_artifacts_roundtrip_and_validate_topology() {
        // Single-switch artifacts carry no `topology` line, so the
        // pre-fabric text format is unchanged.
        assert!(!artifact().to_text().contains("topology"));
        let mut a = artifact();
        a.fabric = FabricSpec::Torus3D { dims: [2, 2, 1] };
        a.plan = FaultPlan::new(0x5EED).with(FaultEvent::LinkDown {
            a: 0,
            b: 1,
            from: SimTime::ZERO + SimDuration::from_micros(1),
            until: SimTime::ZERO + SimDuration::from_millis(1),
        });
        let text = a.to_text();
        assert!(text.contains("topology torus:2x2x1"), "{text}");
        assert_eq!(ReproArtifact::from_text(&text), Ok(a.clone()));
        // A fabric fault without a matching topology is caught at
        // parse time, not as a wiring panic at replay time.
        let no_topology = text.replace("topology torus:2x2x1\n", "");
        let err = ReproArtifact::from_text(&no_topology).unwrap_err();
        assert!(err.contains("invalid for p=4"), "{err}");
        // As is a topology too small for the recorded cluster size.
        let tiny = text.replace("torus:2x2x1", "torus:2x1x1");
        let err = ReproArtifact::from_text(&tiny).unwrap_err();
        assert!(err.contains("topology is invalid for p=4"), "{err}");
    }

    #[test]
    fn parse_errors_are_actionable() {
        let missing = ReproArtifact::from_text("p 4\n");
        assert!(missing.unwrap_err().contains("missing"), "names the gap");
        let bad_tech = artifact().to_text().replace("inic-ideal", "warp-drive");
        let err = ReproArtifact::from_text(&bad_tech).unwrap_err();
        assert!(err.contains("warp-drive"), "{err}");
        // A plan inconsistent with the recorded cluster size is caught
        // at parse time, not as a panic at replay time.
        let bad_plan = artifact().to_text().replace("up:1", "up:9");
        let err = ReproArtifact::from_text(&bad_plan).unwrap_err();
        assert!(err.contains("invalid for p=4"), "{err}");
    }

    #[test]
    fn execute_caught_reports_completion_and_catches_panics() {
        let req = RunRequest::sort(ClusterSpec::new(2, Technology::InicIdeal), 1 << 10);
        let outcome = execute_caught(req);
        assert!(failure_of(&outcome).is_none(), "clean run has no failure");
        let panicked: Result<RunOutcome, String> = Err("AUDIT VIOLATION: demo".to_owned());
        let described = failure_of(&panicked).expect("a panic is a failure");
        assert!(described.contains("panicked") && described.contains("AUDIT VIOLATION"));
    }
}
