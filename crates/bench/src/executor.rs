//! Deterministic parallel run executor.
//!
//! Every campaign in this crate is an embarrassingly parallel matrix of
//! independent `(spec, plan, seed)` runs: each simulation owns its RNG,
//! its event queue and its stats, and shares nothing with its siblings.
//! The [`Executor`] fans such runs across OS threads with a
//! dependency-free work queue over [`std::thread::scope`] — and keeps
//! every report **byte-identical to serial order** by collecting results
//! into their submission slots, so output order never depends on thread
//! scheduling.
//!
//! Determinism contract: for any task list, `Executor::new(1)` and
//! `Executor::new(n)` return the same `Vec` in the same order. The only
//! thing parallelism may change is wall-clock time. `--jobs 1` (or
//! `ACC_JOBS=1`) therefore remains the bit-exact escape hatch should a
//! platform's threading ever be in doubt.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use acc_core::{RunOutcome, RunRequest};

/// Environment variable overriding the worker count (same meaning as
/// `--jobs N`; the CLI flag wins when both are present).
pub const JOBS_ENV: &str = "ACC_JOBS";

/// A pool of worker threads executing independent closures, preserving
/// submission order in the result vector.
#[derive(Clone, Copy, Debug)]
pub struct Executor {
    jobs: usize,
}

impl Executor {
    /// An executor with exactly `jobs` workers.
    ///
    /// # Panics
    /// Panics if `jobs` is zero.
    pub fn new(jobs: usize) -> Executor {
        assert!(jobs >= 1, "executor needs at least one worker");
        Executor { jobs }
    }

    /// Strictly serial executor — the bit-exact escape hatch.
    pub fn serial() -> Executor {
        Executor::new(1)
    }

    /// Worker count from the environment: `ACC_JOBS` if set, otherwise
    /// the machine's available parallelism.
    pub fn auto() -> Executor {
        if let Some(jobs) = jobs_from_env() {
            return Executor::new(jobs);
        }
        Executor::new(default_parallelism())
    }

    /// Worker count from the process command line: the value after a
    /// `--jobs` flag (or `--jobs=N`), falling back to [`auto`](Self::auto)
    /// when absent. Campaign binaries call this once at startup.
    ///
    /// # Panics
    /// Panics on a malformed or zero `--jobs` value — a CLI usage error
    /// worth failing loudly on rather than silently serializing.
    pub fn from_cli() -> Executor {
        match jobs_from_args(std::env::args()) {
            Some(jobs) => Executor::new(jobs),
            None => Executor::auto(),
        }
    }

    /// The worker count this executor fans out to.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Run every task, returning results in submission order.
    ///
    /// With one worker (or one task) this is a plain in-order loop; with
    /// more, a claim-index work queue under [`std::thread::scope`].
    /// Worker panics propagate at scope join, so a failing run aborts
    /// the campaign just as it would serially.
    pub fn map<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = tasks.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return tasks.into_iter().map(|f| f()).collect();
        }
        // Task slots + result slots, one per submission index. Workers
        // claim the next unclaimed index and deposit the result in the
        // matching slot; collection order is then index order no matter
        // which thread ran what.
        let task_slots: Vec<Mutex<Option<F>>> =
            tasks.into_iter().map(|f| Mutex::new(Some(f))).collect();
        let result_slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let task = lock_clean(&task_slots[i])
                            .take()
                            .expect("claim indices are unique, slot cannot be empty");
                        let result = task();
                        *lock_clean(&result_slots[i]) = Some(result);
                    })
                })
                .collect();
            // Join explicitly so a failing run re-raises its own panic
            // payload (message intact), not the scope's generic one.
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        result_slots
            .into_iter()
            .map(|slot| {
                lock_clean_owned(slot).expect("scope joined all workers, every slot is filled")
            })
            .collect()
    }

    /// Execute a batch of [`RunRequest`]s, outcomes in submission order.
    pub fn run_all(&self, requests: Vec<RunRequest>) -> Vec<RunOutcome> {
        self.map(requests.into_iter().map(|r| move || r.execute()).collect())
    }
}

/// Lock a mutex, shrugging off poisoning: a poisoned slot means another
/// worker panicked, and that panic is already propagating via the scope
/// join — the data in *this* slot is still intact.
fn lock_clean<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn lock_clean_owned<T>(m: Mutex<T>) -> T {
    m.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// `ACC_JOBS` from the environment, if set.
///
/// # Panics
/// Panics on a malformed or zero value.
fn jobs_from_env() -> Option<usize> {
    let raw = std::env::var(JOBS_ENV).ok()?;
    let jobs: usize = raw
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("{JOBS_ENV}={raw:?} is not a worker count"));
    assert!(jobs >= 1, "{JOBS_ENV} must be at least 1");
    Some(jobs)
}

/// Parse `--jobs N` or `--jobs=N` out of an argument stream.
fn jobs_from_args(args: impl Iterator<Item = String>) -> Option<usize> {
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let raw = if arg == "--jobs" {
            args.next()
                .unwrap_or_else(|| panic!("--jobs needs a worker count"))
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            v.to_owned()
        } else {
            continue;
        };
        let jobs: usize = raw
            .parse()
            .unwrap_or_else(|_| panic!("--jobs {raw:?} is not a worker count"));
        assert!(jobs >= 1, "--jobs must be at least 1");
        return Some(jobs);
    }
    None
}

/// The machine's available parallelism (1 if unknown).
pub fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_core::{ClusterSpec, Technology};

    #[test]
    fn map_preserves_submission_order() {
        let ex = Executor::new(4);
        let tasks: Vec<_> = (0..64)
            .map(|i| {
                move || {
                    // Stagger completion so late submissions often finish
                    // first; the result order must not care.
                    std::thread::sleep(std::time::Duration::from_micros(64 - i as u64));
                    i * 3
                }
            })
            .collect();
        let got = ex.map(tasks);
        assert_eq!(got, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let build = || {
            (0..16)
                .map(|i| move || format!("task-{i}:{}", i * i))
                .collect::<Vec<_>>()
        };
        let serial = Executor::serial().map(build());
        let parallel = Executor::new(8).map(build());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn run_all_matches_direct_execution() {
        let requests: Vec<RunRequest> = [Technology::GigabitTcp, Technology::InicIdeal]
            .into_iter()
            .map(|t| RunRequest::sort(ClusterSpec::new(2, t), 1 << 10))
            .collect();
        let direct: Vec<_> = requests
            .iter()
            .cloned()
            .map(|r| r.execute().into_sort().total)
            .collect();
        let parallel: Vec<_> = Executor::new(2)
            .run_all(requests)
            .into_iter()
            .map(|o| o.into_sort().total)
            .collect();
        assert_eq!(direct, parallel);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let got: Vec<u32> = Executor::new(8).map(Vec::<fn() -> u32>::new());
        assert!(got.is_empty());
    }

    #[test]
    #[should_panic(expected = "boom at index 3")]
    fn worker_panic_propagates() {
        let tasks: Vec<_> = (0..8)
            .map(|i| {
                move || {
                    if i == 3 {
                        panic!("boom at index {i}");
                    }
                    i
                }
            })
            .collect();
        let _ = Executor::new(4).map(tasks);
    }

    #[test]
    fn jobs_flag_parsing() {
        let parse =
            |argv: &[&str]| jobs_from_args(argv.iter().map(std::string::ToString::to_string));
        assert_eq!(parse(&["bin", "--jobs", "4"]), Some(4));
        assert_eq!(parse(&["bin", "--jobs=2", "--rounds", "8"]), Some(2));
        assert_eq!(parse(&["bin", "--rounds", "8"]), None);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_jobs_rejected() {
        let _ = jobs_from_args(["bin", "--jobs", "0"].iter().map(|s| (*s).to_owned()));
    }
}
