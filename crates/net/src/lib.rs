//! # acc-net — Ethernet fabric models
//!
//! Byte-accurate models of the network hardware under both systems the
//! paper compares: commodity Fast/Gigabit Ethernet NICs and the INIC's
//! PMC Gigabit Ethernet port all attach to the same simulated fabric, so
//! protocol and datapath differences — not fabric differences — explain
//! the results, exactly as in the paper ("although they use the same
//! network technology").
//!
//! * [`frame`] — Ethernet frames with real wire overheads (preamble,
//!   header, FCS, inter-frame gap, minimum frame padding).
//! * [`port`] — a serializing egress port with a bounded drop-tail queue;
//!   shared by NICs and switch outputs.
//! * [`switch`] — a store-and-forward output-queued switch with a static
//!   MAC table and per-port buffer capacity.
//! * [`presets`] — Fast Ethernet, Gigabit Ethernet and switch parameters
//!   matching the prototype cluster (Section 5).

#![forbid(unsafe_code)]

pub mod fabric;
pub mod frame;
pub mod impair;
pub mod port;
pub mod presets;
pub mod routing;
pub mod switch;

pub use fabric::{FabricSpec, Topology};
pub use frame::{EtherType, Frame, FrameError, MacAddr, PayloadView};
pub use impair::{ImpairCounters, Impairment, Verdict};
pub use port::{EgressPort, FrameArrival, PortTxDone};
pub use presets::{EthernetKind, LinkParams, SwitchParams};
pub use routing::{
    compute_schedule, walk_path, Attachment, Epoch, FabricSchedule, PartitionReport, TrunkOutage,
};
pub use switch::{RouteUpdate, Switch, SwitchKill};
