//! A store-and-forward output-queued Ethernet switch.

use std::any::Any;
use std::collections::BTreeMap;

use acc_sim::{Component, ComponentId, Ctx};

use crate::frame::{Frame, MacAddr};
use crate::port::{EgressPort, FrameArrival, PortTxDone};
use crate::presets::{LinkParams, SwitchParams};

/// Internal event: a frame has finished the forwarding pipeline and may
/// enter its output queue.
struct Forward {
    out: usize,
    frame: Frame,
}

/// Fabric event: swap in a new next-hop table (scheduled at routing
/// epoch boundaries by the cluster wiring; see `acc_net::routing`).
pub struct RouteUpdate {
    /// Destination MAC → egress port index, replacing the previous table.
    pub routes: BTreeMap<MacAddr, usize>,
}

/// Fabric fault event: the switch dies. Frames already accepted into an
/// output queue drain (store-and-forward pipeline completes), but every
/// later arrival is blackholed and counted.
pub struct SwitchKill;

/// A non-blocking output-queued switch: any set of inputs can forward
/// concurrently; contention appears only at output ports, whose bounded
/// buffers drop-tail when overrun — the loss mechanism TCP reacts to in
/// the Gigabit Ethernet experiments.
///
/// Two forwarding modes share the datapath:
///
/// * **Flood** (default) — unknown unicast and broadcast replicate to
///   every port but the ingress, as a learning switch would. This is
///   the paper's single-switch baseline.
/// * **Routed** ([`enable_routing`](Switch::enable_routing)) — a fabric
///   member: misses in the local MAC table consult the installed
///   next-hop table instead of flooding; broadcast and table misses are
///   dropped and counted as unroutable, so a partition surfaces as
///   attributed counters, never as silent replication storms.
pub struct Switch {
    label: String,
    params: SwitchParams,
    ports: Vec<EgressPort>,
    mac_table: BTreeMap<MacAddr, usize>,
    /// Routed mode: next-hop table (dst MAC → port), swapped by
    /// [`RouteUpdate`] at epoch boundaries.
    routes: Option<BTreeMap<MacAddr, usize>>,
    dead: bool,
    blackhole_drops: u64,
    unroutable_drops: u64,
}

impl Switch {
    /// Create an empty switch; attach devices before registering it.
    pub fn new(label: impl Into<String>, params: SwitchParams) -> Switch {
        Switch {
            label: label.into(),
            params,
            ports: Vec::new(),
            mac_table: BTreeMap::new(),
            routes: None,
            dead: false,
            blackhole_drops: 0,
            unroutable_drops: 0,
        }
    }

    /// Attach a device: frames destined to `mac` egress through a new
    /// port wired to `peer` (its [`FrameArrival::port`] will be
    /// `peer_port`). Returns this switch's port index, which the device
    /// must use as the `peer_port` of its own egress toward the switch.
    pub fn attach(
        &mut self,
        mac: MacAddr,
        peer: ComponentId,
        peer_port: usize,
        link: LinkParams,
    ) -> usize {
        let idx = self.ports.len();
        self.ports.push(EgressPort::new(
            link.rate,
            link.prop_delay,
            self.params.port_buffer,
            peer,
            peer_port,
            idx,
        ));
        let prev = self.mac_table.insert(mac, idx);
        assert!(prev.is_none(), "MAC {mac:?} attached twice");
        idx
    }

    /// Attach a trunk to a peer switch: a new egress port toward `peer`
    /// (its [`FrameArrival::port`] will be `peer_port`) with no MAC
    /// table entry — trunks carry whatever the next-hop table sends.
    pub fn attach_trunk(&mut self, peer: ComponentId, peer_port: usize, link: LinkParams) -> usize {
        let idx = self.ports.len();
        self.ports.push(EgressPort::new(
            link.rate,
            link.prop_delay,
            self.params.port_buffer,
            peer,
            peer_port,
            idx,
        ));
        idx
    }

    /// Switch to routed (fabric) mode with an initial next-hop table.
    /// In this mode unknown unicast and broadcast never flood.
    pub fn enable_routing(&mut self, routes: BTreeMap<MacAddr, usize>) {
        self.routes = Some(routes);
    }

    /// Frames discarded because this switch was dead when they arrived.
    pub fn blackhole_drops(&self) -> u64 {
        self.blackhole_drops
    }

    /// Frames discarded in routed mode for lack of any next hop
    /// (partitioned or unknown destination, or broadcast).
    pub fn unroutable_drops(&self) -> u64 {
        self.unroutable_drops
    }

    /// Whether a [`SwitchKill`] has taken this switch down.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Attach a fault model to one output port (the switch→device
    /// downlink direction).
    pub fn set_port_impairment(&mut self, port: usize, imp: crate::impair::Impairment) {
        self.ports[port].set_impairment(imp);
    }

    /// Publish conservation counters for one output port under `label`
    /// (see [`EgressPort::set_stats_label`]).
    pub fn set_port_stats_label(&mut self, port: usize, label: impl Into<String>) {
        self.ports[port].set_stats_label(label);
    }

    /// Read access to one output port (counters, impairment state).
    pub fn port(&self, idx: usize) -> &EgressPort {
        &self.ports[idx]
    }

    /// Frames discarded by fault injection across all output ports
    /// (distinct from queue-overflow drops).
    pub fn impair_lost_total(&self) -> u64 {
        self.ports
            .iter()
            .filter_map(EgressPort::impairment)
            .map(|i| {
                let c = i.counters();
                c.lost + c.outage_drops
            })
            .sum()
    }

    /// Total frames dropped across all output queues.
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(EgressPort::drops).sum()
    }

    /// Total frames forwarded out of all ports.
    pub fn total_sent(&self) -> u64 {
        self.ports.iter().map(EgressPort::sent).sum()
    }

    fn forward(&mut self, ingress: usize, frame: Frame, ctx: &mut Ctx) {
        let latency = self.params.forwarding_latency;
        if frame.dst == MacAddr::BROADCAST {
            if self.routes.is_some() {
                // Fabric members never flood: replicating a broadcast
                // across trunks would storm the whole fabric. No cluster
                // protocol broadcasts, so this only catches bugs.
                self.drop_unroutable(ctx);
            } else {
                self.flood(ingress, frame, ctx);
            }
            return;
        }
        if let Some(&out) = self.mac_table.get(&frame.dst) {
            debug_assert_ne!(out, ingress, "frame forwarded to its ingress port");
            ctx.self_in(latency, Forward { out, frame });
            return;
        }
        match &self.routes {
            Some(routes) => match routes.get(&frame.dst) {
                Some(&out) => {
                    // Next hops strictly decrease BFS distance to the
                    // destination, so a route never points back out the
                    // ingress trunk.
                    debug_assert_ne!(out, ingress, "frame forwarded to its ingress port");
                    ctx.self_in(latency, Forward { out, frame });
                }
                // Partitioned or unknown destination: structured loss,
                // surfaced via counters and wait_state instead of a
                // silent flood.
                None => self.drop_unroutable(ctx),
            },
            None => {
                // Unknown unicast: flood, as a learning switch would before
                // the table is warm.
                self.flood(ingress, frame, ctx);
            }
        }
    }

    fn drop_unroutable(&mut self, ctx: &mut Ctx) {
        self.unroutable_drops += 1;
        ctx.stats().counter(&self.label, "frames_unroutable").inc();
    }

    fn drop_blackhole(&mut self, ctx: &mut Ctx) {
        self.blackhole_drops += 1;
        ctx.stats().counter(&self.label, "frames_blackholed").inc();
    }

    /// Replicate `frame` to every port except `ingress`. Each replica
    /// shares the same payload allocation (the `Frame` clone bumps a
    /// refcount — see [`crate::frame::PayloadView`]); the highest egress
    /// port takes the original by move, so an N-port flood performs zero
    /// payload copies.
    fn flood(&mut self, ingress: usize, frame: Frame, ctx: &mut Ctx) {
        let latency = self.params.forwarding_latency;
        let Some(last) = (0..self.ports.len()).rev().find(|&out| out != ingress) else {
            return;
        };
        for out in 0..last {
            if out != ingress {
                ctx.self_in(
                    latency,
                    Forward {
                        out,
                        frame: frame.clone(),
                    },
                );
            }
        }
        ctx.self_in(latency, Forward { out: last, frame });
    }
}

impl Component for Switch {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        let ev = match ev.downcast::<FrameArrival>() {
            Ok(arrival) => {
                ctx.stats().counter(&self.label, "frames_in").inc();
                if self.dead {
                    self.drop_blackhole(ctx);
                } else {
                    self.forward(arrival.port, arrival.frame, ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<Forward>() {
            Ok(fwd) => {
                if self.dead {
                    // Died mid-pipeline: the frame was counted in but
                    // never reaches an output queue.
                    self.drop_blackhole(ctx);
                    return;
                }
                let ok = self.ports[fwd.out].enqueue(fwd.frame, ctx);
                if ok {
                    ctx.stats().counter(&self.label, "frames_fwd").inc();
                } else {
                    ctx.stats().counter(&self.label, "frames_dropped").inc();
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<PortTxDone>() {
            Ok(done) => {
                self.ports[done.port].tx_done(ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<RouteUpdate>() {
            Ok(update) => {
                self.routes = Some(update.routes);
                return;
            }
            Err(ev) => ev,
        };
        match ev.downcast::<SwitchKill>() {
            Ok(_) => self.dead = true,
            Err(_) => panic!("switch {}: unknown event type", self.label),
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        if self.dead {
            return Some(format!(
                "switch failed ({} frames blackholed)",
                self.blackhole_drops
            ));
        }
        if self.unroutable_drops > 0 {
            return Some(format!(
                "{} frames unroutable (partitioned destination)",
                self.unroutable_drops
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;
    use crate::presets::EthernetKind;
    use acc_sim::{Bandwidth, DataSize, SimDuration, SimTime, Simulation};

    /// End host for switch tests: sends pre-loaded frames at t=0 through
    /// its uplink, records what it receives.
    struct Host {
        uplink: Option<EgressPort>,
        outbox: Vec<Frame>,
        inbox: Vec<(SimTime, Frame)>,
    }

    impl Component for Host {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            if ev.downcast_ref::<()>().is_some() {
                for f in self.outbox.drain(..) {
                    self.uplink
                        .as_mut()
                        .expect("host: uplink never wired to its switch port")
                        .enqueue(f, ctx);
                }
            } else if ev.downcast_ref::<PortTxDone>().is_some() {
                self.uplink
                    .as_mut()
                    .expect("host: tx-done for an uplink that was never wired")
                    .tx_done(ctx);
            } else if let Ok(arr) = ev.downcast::<FrameArrival>() {
                self.inbox.push((ctx.now(), arr.frame));
            } else {
                panic!("host: unknown event");
            }
        }
        fn name(&self) -> &str {
            "host"
        }
    }

    /// Wire N hosts to one switch; host i pre-loads `outbox(i)`.
    fn build_star(
        n: usize,
        outbox: impl Fn(usize) -> Vec<Frame>,
    ) -> (Simulation, Vec<acc_sim::ComponentId>, acc_sim::ComponentId) {
        let mut sim = Simulation::new(1);
        let link = LinkParams::for_kind(EthernetKind::Gigabit);
        let host_ids: Vec<_> = (0..n).map(|_| sim.reserve_id()).collect();
        let switch_id = sim.reserve_id();
        let mut switch = Switch::new("sw", SwitchParams::default());
        let mut hosts: Vec<Host> = Vec::new();
        for (i, &hid) in host_ids.iter().enumerate() {
            let sw_port = switch.attach(MacAddr::for_node(i, 0), hid, 0, link);
            hosts.push(Host {
                uplink: Some(EgressPort::new(
                    link.rate,
                    link.prop_delay,
                    DataSize::from_kib(512),
                    switch_id,
                    sw_port,
                    0,
                )),
                outbox: outbox(i),
                inbox: vec![],
            });
        }
        sim.register(switch_id, switch);
        for (hid, host) in host_ids.iter().zip(hosts) {
            sim.register(*hid, host);
            sim.schedule_at(SimTime::ZERO, *hid, ());
        }
        (sim, host_ids, switch_id)
    }

    fn unicast(src: usize, dst: usize, n: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(src, 0),
            MacAddr::for_node(dst, 0),
            EtherType::Other(0),
            vec![src as u8; n],
        )
    }

    #[test]
    fn unicast_reaches_only_destination() {
        let (mut sim, ids, _) = build_star(3, |i| {
            if i == 0 {
                vec![unicast(0, 2, 1000)]
            } else {
                vec![]
            }
        });
        sim.run();
        assert_eq!(sim.component::<Host>(ids[1]).inbox.len(), 0);
        let inbox = &sim.component::<Host>(ids[2]).inbox;
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].1.payload, vec![0u8; 1000]);
        // Arrival after: host ser + prop + forwarding + switch ser + prop.
        let ser = Bandwidth::from_mbit_per_sec(1000).transfer_time(unicast(0, 2, 1000).wire_size());
        let expect = ser
            + SimDuration::from_nanos(500)
            + SimDuration::from_micros(4)
            + ser
            + SimDuration::from_nanos(500);
        assert_eq!(inbox[0].0, SimTime::ZERO + expect);
    }

    #[test]
    fn broadcast_floods_all_but_ingress() {
        let (mut sim, ids, _) = build_star(4, |i| {
            if i == 1 {
                vec![Frame::new(
                    MacAddr::for_node(1, 0),
                    MacAddr::BROADCAST,
                    EtherType::Other(0),
                    vec![9; 100],
                )]
            } else {
                vec![]
            }
        });
        sim.run();
        for (i, id) in ids.iter().enumerate() {
            let got = sim.component::<Host>(*id).inbox.len();
            assert_eq!(got, usize::from(i != 1), "host {i}");
        }
    }

    #[test]
    fn concurrent_unicasts_do_not_interfere() {
        // 0→1 and 2→3 simultaneously: both deliver at the same instant.
        let (mut sim, ids, _) = build_star(4, |i| match i {
            0 => vec![unicast(0, 1, 1000)],
            2 => vec![unicast(2, 3, 1000)],
            _ => vec![],
        });
        sim.run();
        let t1 = sim.component::<Host>(ids[1]).inbox[0].0;
        let t3 = sim.component::<Host>(ids[3]).inbox[0].0;
        assert_eq!(t1, t3);
    }

    #[test]
    fn output_contention_serializes() {
        // 1→0 and 2→0: second frame queues behind the first at port 0.
        let (mut sim, ids, _) = build_star(3, |i| match i {
            1 => vec![unicast(1, 0, 1000)],
            2 => vec![unicast(2, 0, 1000)],
            _ => vec![],
        });
        sim.run();
        let inbox = &sim.component::<Host>(ids[0]).inbox;
        assert_eq!(inbox.len(), 2);
        let gap = inbox[1].0.since(inbox[0].0);
        let ser = Bandwidth::from_mbit_per_sec(1000).transfer_time(unicast(1, 0, 1000).wire_size());
        assert_eq!(gap, ser, "second delivery exactly one serialization later");
    }

    #[test]
    fn overload_drops_at_output_buffer() {
        // Two senders blast 600 KiB each at one receiver; the 512 KiB
        // output buffer must overflow.
        let frames_each = 600;
        let (mut sim, ids, sw) = build_star(3, |i| {
            if i == 1 || i == 2 {
                (0..frames_each).map(|_| unicast(i, 0, 1024)).collect()
            } else {
                vec![]
            }
        });
        sim.run();
        let delivered = sim.component::<Host>(ids[0]).inbox.len();
        let sw_dropped = sim.component::<Switch>(sw).total_drops();
        // Frames can also drop at the senders' own 512 KiB uplink buffers
        // when the application enqueues 600 KiB in one burst.
        let host_dropped: u64 = ids
            .iter()
            .map(|&id| sim.component::<Host>(id).uplink.as_ref().unwrap().drops())
            .sum();
        assert_eq!(
            delivered as u64 + sw_dropped + host_dropped,
            2 * frames_each as u64
        );
        assert!(
            sw_dropped > 0,
            "expected switch drop-tail under 2:1 output overload"
        );
    }

    /// Two switches joined by a trunk, one host on each, routed mode.
    /// Returns (sim, host ids, switch ids).
    fn build_routed_pair() -> (
        Simulation,
        [acc_sim::ComponentId; 2],
        [acc_sim::ComponentId; 2],
    ) {
        let mut sim = Simulation::new(1);
        let link = LinkParams::for_kind(EthernetKind::Gigabit);
        let h0 = sim.reserve_id();
        let h1 = sim.reserve_id();
        let sa = sim.reserve_id();
        let sb = sim.reserve_id();
        let mut a = Switch::new("swa", SwitchParams::default());
        let mut b = Switch::new("swb", SwitchParams::default());
        let pa0 = a.attach(MacAddr::for_node(0, 0), h0, 0, link);
        let pb0 = b.attach(MacAddr::for_node(1, 0), h1, 0, link);
        let ta = a.attach_trunk(sb, 1, link);
        let tb = b.attach_trunk(sa, 1, link);
        assert_eq!((ta, tb), (1, 1));
        a.enable_routing([(MacAddr::for_node(1, 0), ta)].into());
        b.enable_routing([(MacAddr::for_node(0, 0), tb)].into());
        sim.register(sa, a);
        sim.register(sb, b);
        for (hid, swid, swport, i) in [(h0, sa, pa0, 0usize), (h1, sb, pb0, 1usize)] {
            sim.register(
                hid,
                Host {
                    uplink: Some(EgressPort::new(
                        link.rate,
                        link.prop_delay,
                        DataSize::from_kib(512),
                        swid,
                        swport,
                        0,
                    )),
                    outbox: if i == 0 {
                        vec![unicast(0, 1, 700)]
                    } else {
                        vec![]
                    },
                    inbox: vec![],
                },
            );
            sim.schedule_at(SimTime::ZERO, hid, ());
        }
        (sim, [h0, h1], [sa, sb])
    }

    #[test]
    fn routed_unicast_crosses_trunk() {
        let (mut sim, hosts, switches) = build_routed_pair();
        sim.run();
        let inbox = &sim.component::<Host>(hosts[1]).inbox;
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].1.payload, vec![0u8; 700]);
        for sw in switches {
            let s = sim.component::<Switch>(sw);
            assert_eq!(s.unroutable_drops(), 0);
            assert_eq!(s.blackhole_drops(), 0);
            assert!(s.wait_state().is_none());
        }
    }

    #[test]
    fn routed_mode_never_floods() {
        // Unknown unicast and broadcast both drop as unroutable instead
        // of replicating across the fabric.
        let (mut sim, hosts, switches) = build_routed_pair();
        {
            let host = sim.component_mut::<Host>(hosts[0]);
            host.outbox = vec![
                unicast(0, 9, 100), // no such destination
                Frame::new(
                    MacAddr::for_node(0, 0),
                    MacAddr::BROADCAST,
                    EtherType::Other(0),
                    vec![7; 100],
                ),
            ];
        }
        sim.run();
        assert_eq!(sim.component::<Host>(hosts[1]).inbox.len(), 0);
        let a = sim.component::<Switch>(switches[0]);
        assert_eq!(a.unroutable_drops(), 2);
        assert!(a
            .wait_state()
            .expect("unroutable drops must surface in wait_state")
            .contains("unroutable"));
    }

    #[test]
    fn killed_switch_blackholes_arrivals() {
        let (mut sim, hosts, switches) = build_routed_pair();
        // The kill is scheduled before the host's frame finishes
        // serializing, so the arrival hits a dead switch.
        sim.schedule_at(SimTime::ZERO, switches[0], SwitchKill);
        sim.run();
        assert_eq!(sim.component::<Host>(hosts[1]).inbox.len(), 0);
        let a = sim.component::<Switch>(switches[0]);
        assert!(a.is_dead());
        assert_eq!(a.blackhole_drops(), 1);
        assert!(a
            .wait_state()
            .expect("a dead switch must surface in wait_state")
            .contains("switch failed"));
    }

    #[test]
    fn route_update_swaps_table() {
        let (mut sim, hosts, switches) = build_routed_pair();
        // Empty the table before the frame arrives: it must drop.
        sim.schedule_at(
            SimTime::ZERO,
            switches[0],
            RouteUpdate {
                routes: BTreeMap::new(),
            },
        );
        sim.run();
        assert_eq!(sim.component::<Host>(hosts[1]).inbox.len(), 0);
        assert_eq!(sim.component::<Switch>(switches[0]).unroutable_drops(), 1);
    }

    #[test]
    fn flooded_frame_outage_drops_count_per_port() {
        // A broadcast replicated to two outage-darkened egress ports is
        // charged one drop per port, not one per frame.
        let (mut sim, ids, sw) = build_star(3, |i| {
            if i == 0 {
                vec![Frame::new(
                    MacAddr::for_node(0, 0),
                    MacAddr::BROADCAST,
                    EtherType::Other(0),
                    vec![3; 200],
                )]
            } else {
                vec![]
            }
        });
        let far = SimTime::ZERO + SimDuration::from_secs(1);
        for port in [1usize, 2] {
            let imp = crate::impair::Impairment::new(acc_sim::SimRng::seed_from(5))
                .with_outage(SimTime::ZERO, far);
            sim.component_mut::<Switch>(sw)
                .set_port_impairment(port, imp);
        }
        sim.run();
        assert_eq!(sim.component::<Host>(ids[1]).inbox.len(), 0);
        assert_eq!(sim.component::<Host>(ids[2]).inbox.len(), 0);
        let s = sim.component::<Switch>(sw);
        assert_eq!(
            s.impair_lost_total(),
            2,
            "one outage drop per egress port replica"
        );
        for port in [1usize, 2] {
            assert_eq!(
                s.port(port)
                    .impairment()
                    .expect("impairment installed above")
                    .counters()
                    .outage_drops,
                1,
                "port {port}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn duplicate_mac_rejected() {
        let mut sw = Switch::new("sw", SwitchParams::default());
        let link = LinkParams::for_kind(EthernetKind::Gigabit);
        sw.attach(MacAddr::for_node(0, 0), ComponentId::from_raw(0), 0, link);
        sw.attach(MacAddr::for_node(0, 0), ComponentId::from_raw(1), 0, link);
    }
}
