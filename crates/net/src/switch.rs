//! A store-and-forward output-queued Ethernet switch.

use std::any::Any;
use std::collections::BTreeMap;

use acc_sim::{Component, ComponentId, Ctx};

use crate::frame::{Frame, MacAddr};
use crate::port::{EgressPort, FrameArrival, PortTxDone};
use crate::presets::{LinkParams, SwitchParams};

/// Internal event: a frame has finished the forwarding pipeline and may
/// enter its output queue.
struct Forward {
    out: usize,
    frame: Frame,
}

/// A non-blocking output-queued switch: any set of inputs can forward
/// concurrently; contention appears only at output ports, whose bounded
/// buffers drop-tail when overrun — the loss mechanism TCP reacts to in
/// the Gigabit Ethernet experiments.
pub struct Switch {
    label: String,
    params: SwitchParams,
    ports: Vec<EgressPort>,
    mac_table: BTreeMap<MacAddr, usize>,
}

impl Switch {
    /// Create an empty switch; attach devices before registering it.
    pub fn new(label: impl Into<String>, params: SwitchParams) -> Switch {
        Switch {
            label: label.into(),
            params,
            ports: Vec::new(),
            mac_table: BTreeMap::new(),
        }
    }

    /// Attach a device: frames destined to `mac` egress through a new
    /// port wired to `peer` (its [`FrameArrival::port`] will be
    /// `peer_port`). Returns this switch's port index, which the device
    /// must use as the `peer_port` of its own egress toward the switch.
    pub fn attach(
        &mut self,
        mac: MacAddr,
        peer: ComponentId,
        peer_port: usize,
        link: LinkParams,
    ) -> usize {
        let idx = self.ports.len();
        self.ports.push(EgressPort::new(
            link.rate,
            link.prop_delay,
            self.params.port_buffer,
            peer,
            peer_port,
            idx,
        ));
        let prev = self.mac_table.insert(mac, idx);
        assert!(prev.is_none(), "MAC {mac:?} attached twice");
        idx
    }

    /// Number of attached ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// Attach a fault model to one output port (the switch→device
    /// downlink direction).
    pub fn set_port_impairment(&mut self, port: usize, imp: crate::impair::Impairment) {
        self.ports[port].set_impairment(imp);
    }

    /// Publish conservation counters for one output port under `label`
    /// (see [`EgressPort::set_stats_label`]).
    pub fn set_port_stats_label(&mut self, port: usize, label: impl Into<String>) {
        self.ports[port].set_stats_label(label);
    }

    /// Read access to one output port (counters, impairment state).
    pub fn port(&self, idx: usize) -> &EgressPort {
        &self.ports[idx]
    }

    /// Frames discarded by fault injection across all output ports
    /// (distinct from queue-overflow drops).
    pub fn impair_lost_total(&self) -> u64 {
        self.ports
            .iter()
            .filter_map(EgressPort::impairment)
            .map(|i| {
                let c = i.counters();
                c.lost + c.outage_drops
            })
            .sum()
    }

    /// Total frames dropped across all output queues.
    pub fn total_drops(&self) -> u64 {
        self.ports.iter().map(EgressPort::drops).sum()
    }

    /// Total frames forwarded out of all ports.
    pub fn total_sent(&self) -> u64 {
        self.ports.iter().map(EgressPort::sent).sum()
    }

    fn forward(&mut self, ingress: usize, frame: Frame, ctx: &mut Ctx) {
        let latency = self.params.forwarding_latency;
        if frame.dst == MacAddr::BROADCAST {
            self.flood(ingress, frame, ctx);
            return;
        }
        match self.mac_table.get(&frame.dst) {
            Some(&out) => {
                debug_assert_ne!(out, ingress, "frame forwarded to its ingress port");
                ctx.self_in(latency, Forward { out, frame });
            }
            None => {
                // Unknown unicast: flood, as a learning switch would before
                // the table is warm.
                self.flood(ingress, frame, ctx);
            }
        }
    }

    /// Replicate `frame` to every port except `ingress`. Each replica
    /// shares the same payload allocation (the `Frame` clone bumps a
    /// refcount — see [`crate::frame::PayloadView`]); the highest egress
    /// port takes the original by move, so an N-port flood performs zero
    /// payload copies.
    fn flood(&mut self, ingress: usize, frame: Frame, ctx: &mut Ctx) {
        let latency = self.params.forwarding_latency;
        let Some(last) = (0..self.ports.len()).rev().find(|&out| out != ingress) else {
            return;
        };
        for out in 0..last {
            if out != ingress {
                ctx.self_in(
                    latency,
                    Forward {
                        out,
                        frame: frame.clone(),
                    },
                );
            }
        }
        ctx.self_in(latency, Forward { out: last, frame });
    }
}

impl Component for Switch {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        let ev = match ev.downcast::<FrameArrival>() {
            Ok(arrival) => {
                ctx.stats().counter(&self.label, "frames_in").inc();
                self.forward(arrival.port, arrival.frame, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<Forward>() {
            Ok(fwd) => {
                let ok = self.ports[fwd.out].enqueue(fwd.frame, ctx);
                if ok {
                    ctx.stats().counter(&self.label, "frames_fwd").inc();
                } else {
                    ctx.stats().counter(&self.label, "frames_dropped").inc();
                }
                return;
            }
            Err(ev) => ev,
        };
        match ev.downcast::<PortTxDone>() {
            Ok(done) => self.ports[done.port].tx_done(ctx),
            Err(_) => panic!("switch {}: unknown event type", self.label),
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;
    use crate::presets::EthernetKind;
    use acc_sim::{Bandwidth, DataSize, SimDuration, SimTime, Simulation};

    /// End host for switch tests: sends pre-loaded frames at t=0 through
    /// its uplink, records what it receives.
    struct Host {
        uplink: Option<EgressPort>,
        outbox: Vec<Frame>,
        inbox: Vec<(SimTime, Frame)>,
    }

    impl Component for Host {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            if ev.downcast_ref::<()>().is_some() {
                for f in self.outbox.drain(..) {
                    self.uplink
                        .as_mut()
                        .expect("host: uplink never wired to its switch port")
                        .enqueue(f, ctx);
                }
            } else if ev.downcast_ref::<PortTxDone>().is_some() {
                self.uplink
                    .as_mut()
                    .expect("host: tx-done for an uplink that was never wired")
                    .tx_done(ctx);
            } else if let Ok(arr) = ev.downcast::<FrameArrival>() {
                self.inbox.push((ctx.now(), arr.frame));
            } else {
                panic!("host: unknown event");
            }
        }
        fn name(&self) -> &str {
            "host"
        }
    }

    /// Wire N hosts to one switch; host i pre-loads `outbox(i)`.
    fn build_star(
        n: usize,
        outbox: impl Fn(usize) -> Vec<Frame>,
    ) -> (Simulation, Vec<acc_sim::ComponentId>, acc_sim::ComponentId) {
        let mut sim = Simulation::new(1);
        let link = LinkParams::for_kind(EthernetKind::Gigabit);
        let host_ids: Vec<_> = (0..n).map(|_| sim.reserve_id()).collect();
        let switch_id = sim.reserve_id();
        let mut switch = Switch::new("sw", SwitchParams::default());
        let mut hosts: Vec<Host> = Vec::new();
        for (i, &hid) in host_ids.iter().enumerate() {
            let sw_port = switch.attach(MacAddr::for_node(i, 0), hid, 0, link);
            hosts.push(Host {
                uplink: Some(EgressPort::new(
                    link.rate,
                    link.prop_delay,
                    DataSize::from_kib(512),
                    switch_id,
                    sw_port,
                    0,
                )),
                outbox: outbox(i),
                inbox: vec![],
            });
        }
        sim.register(switch_id, switch);
        for (hid, host) in host_ids.iter().zip(hosts) {
            sim.register(*hid, host);
            sim.schedule_at(SimTime::ZERO, *hid, ());
        }
        (sim, host_ids, switch_id)
    }

    fn unicast(src: usize, dst: usize, n: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(src, 0),
            MacAddr::for_node(dst, 0),
            EtherType::Other(0),
            vec![src as u8; n],
        )
    }

    #[test]
    fn unicast_reaches_only_destination() {
        let (mut sim, ids, _) = build_star(3, |i| {
            if i == 0 {
                vec![unicast(0, 2, 1000)]
            } else {
                vec![]
            }
        });
        sim.run();
        assert_eq!(sim.component::<Host>(ids[1]).inbox.len(), 0);
        let inbox = &sim.component::<Host>(ids[2]).inbox;
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].1.payload, vec![0u8; 1000]);
        // Arrival after: host ser + prop + forwarding + switch ser + prop.
        let ser = Bandwidth::from_mbit_per_sec(1000).transfer_time(unicast(0, 2, 1000).wire_size());
        let expect = ser
            + SimDuration::from_nanos(500)
            + SimDuration::from_micros(4)
            + ser
            + SimDuration::from_nanos(500);
        assert_eq!(inbox[0].0, SimTime::ZERO + expect);
    }

    #[test]
    fn broadcast_floods_all_but_ingress() {
        let (mut sim, ids, _) = build_star(4, |i| {
            if i == 1 {
                vec![Frame::new(
                    MacAddr::for_node(1, 0),
                    MacAddr::BROADCAST,
                    EtherType::Other(0),
                    vec![9; 100],
                )]
            } else {
                vec![]
            }
        });
        sim.run();
        for (i, id) in ids.iter().enumerate() {
            let got = sim.component::<Host>(*id).inbox.len();
            assert_eq!(got, usize::from(i != 1), "host {i}");
        }
    }

    #[test]
    fn concurrent_unicasts_do_not_interfere() {
        // 0→1 and 2→3 simultaneously: both deliver at the same instant.
        let (mut sim, ids, _) = build_star(4, |i| match i {
            0 => vec![unicast(0, 1, 1000)],
            2 => vec![unicast(2, 3, 1000)],
            _ => vec![],
        });
        sim.run();
        let t1 = sim.component::<Host>(ids[1]).inbox[0].0;
        let t3 = sim.component::<Host>(ids[3]).inbox[0].0;
        assert_eq!(t1, t3);
    }

    #[test]
    fn output_contention_serializes() {
        // 1→0 and 2→0: second frame queues behind the first at port 0.
        let (mut sim, ids, _) = build_star(3, |i| match i {
            1 => vec![unicast(1, 0, 1000)],
            2 => vec![unicast(2, 0, 1000)],
            _ => vec![],
        });
        sim.run();
        let inbox = &sim.component::<Host>(ids[0]).inbox;
        assert_eq!(inbox.len(), 2);
        let gap = inbox[1].0.since(inbox[0].0);
        let ser = Bandwidth::from_mbit_per_sec(1000).transfer_time(unicast(1, 0, 1000).wire_size());
        assert_eq!(gap, ser, "second delivery exactly one serialization later");
    }

    #[test]
    fn overload_drops_at_output_buffer() {
        // Two senders blast 600 KiB each at one receiver; the 512 KiB
        // output buffer must overflow.
        let frames_each = 600;
        let (mut sim, ids, sw) = build_star(3, |i| {
            if i == 1 || i == 2 {
                (0..frames_each).map(|_| unicast(i, 0, 1024)).collect()
            } else {
                vec![]
            }
        });
        sim.run();
        let delivered = sim.component::<Host>(ids[0]).inbox.len();
        let sw_dropped = sim.component::<Switch>(sw).total_drops();
        // Frames can also drop at the senders' own 512 KiB uplink buffers
        // when the application enqueues 600 KiB in one burst.
        let host_dropped: u64 = ids
            .iter()
            .map(|&id| sim.component::<Host>(id).uplink.as_ref().unwrap().drops())
            .sum();
        assert_eq!(
            delivered as u64 + sw_dropped + host_dropped,
            2 * frames_each as u64
        );
        assert!(
            sw_dropped > 0,
            "expected switch drop-tail under 2:1 output overload"
        );
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn duplicate_mac_rejected() {
        let mut sw = Switch::new("sw", SwitchParams::default());
        let link = LinkParams::for_kind(EthernetKind::Gigabit);
        sw.attach(MacAddr::for_node(0, 0), ComponentId::from_raw(0), 0, link);
        sw.attach(MacAddr::for_node(0, 0), ComponentId::from_raw(1), 0, link);
    }
}
