//! Parameter presets for the fabrics in the prototype cluster.

use acc_sim::{Bandwidth, DataSize, SimDuration};

/// The two commodity Ethernet generations in the testbed (Section 5).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EthernetKind {
    /// 100 Mb/s Fast Ethernet.
    Fast,
    /// 1 Gb/s Gigabit Ethernet (SysKonnect PCI NIC / PMC NIC).
    Gigabit,
}

impl EthernetKind {
    /// Line rate.
    pub fn rate(self) -> Bandwidth {
        match self {
            EthernetKind::Fast => Bandwidth::from_mbit_per_sec(100),
            EthernetKind::Gigabit => Bandwidth::from_mbit_per_sec(1000),
        }
    }
}

/// Physical link parameters.
#[derive(Clone, Copy, Debug)]
pub struct LinkParams {
    /// Line rate.
    pub rate: Bandwidth,
    /// One-way propagation + PHY delay.
    pub prop_delay: SimDuration,
}

impl LinkParams {
    /// A cluster-room cable: ~20 m of copper plus PHY latency, ≈ 500 ns.
    pub fn for_kind(kind: EthernetKind) -> LinkParams {
        LinkParams {
            rate: kind.rate(),
            prop_delay: SimDuration::from_nanos(500),
        }
    }
}

/// Switch parameters.
#[derive(Clone, Copy, Debug)]
pub struct SwitchParams {
    /// Per-output-port buffer capacity. 512 KiB/port is typical of
    /// 2001-era GigE switches and is the bound the INIC protocol's credit
    /// scheme respects ("the total amount of data put into the network
    /// never exceeds the total size of the network buffers").
    pub port_buffer: DataSize,
    /// Fixed forwarding latency (lookup + scheduling) added after the
    /// full frame is received.
    pub forwarding_latency: SimDuration,
}

impl Default for SwitchParams {
    fn default() -> Self {
        SwitchParams {
            port_buffer: DataSize::from_kib(512),
            forwarding_latency: SimDuration::from_micros(4),
        }
    }
}

/// NIC-side transmit/receive buffering (SysKonnect cards carried on the
/// order of 512 KiB of packet memory).
pub const NIC_BUFFER: DataSize = DataSize::from_kib(512);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_match_standards() {
        assert_eq!(EthernetKind::Fast.rate().bytes_per_sec(), 12_500_000);
        assert_eq!(EthernetKind::Gigabit.rate().bytes_per_sec(), 125_000_000);
    }

    #[test]
    fn defaults_are_sane() {
        let sw = SwitchParams::default();
        assert_eq!(sw.port_buffer, DataSize::from_kib(512));
        assert!(sw.forwarding_latency > SimDuration::ZERO);
        let link = LinkParams::for_kind(EthernetKind::Gigabit);
        assert_eq!(link.rate, EthernetKind::Gigabit.rate());
    }
}
