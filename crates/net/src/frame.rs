//! Ethernet frames and addresses.

use acc_sim::DataSize;

/// Layer-2 overhead that occupies the wire per frame but never reaches
/// the payload: preamble + SFD (8) + dst/src/ethertype (14) + FCS (4) +
/// inter-frame gap (12).
pub const WIRE_OVERHEAD: u64 = 8 + 14 + 4 + 12;

/// Minimum Ethernet payload; shorter payloads are padded on the wire.
pub const MIN_PAYLOAD: u64 = 46;

/// Maximum standard Ethernet payload (no jumbo frames in 2001 commodity
/// gear, and the paper's INIC protocol deliberately uses 1024-byte
/// packets well under it).
pub const MAX_PAYLOAD: u64 = 1500;

/// A 48-bit MAC address, stored compactly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MacAddr(pub u64);

impl MacAddr {
    /// Deterministic per-node address used by cluster builders: node `i`
    /// NIC `j` gets a distinct MAC.
    pub fn for_node(node: usize, nic: usize) -> MacAddr {
        MacAddr(0x02_00_00_00_00_00 | ((node as u64) << 8) | nic as u64)
    }

    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr(0xFF_FF_FF_FF_FF_FF);
}

/// The protocol carried by a frame. The TCP path wraps payload in IP+TCP
/// headers; the INIC path runs its application-specific protocol directly
/// on Ethernet (Section 4.2: "each design can have a protocol built
/// directly on Ethernet").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EtherType {
    /// IPv4 (carrying the modelled TCP).
    Ipv4,
    /// The INIC application-specific protocol.
    Inic,
    /// Anything else (tests).
    Other(u16),
}

/// A simulated Ethernet frame.
///
/// The payload carries *real bytes* — the data that applications sort and
/// transform — so end-to-end correctness is checked, not just timing.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Source address.
    pub src: MacAddr,
    /// Destination address.
    pub dst: MacAddr,
    /// Carried protocol.
    pub ethertype: EtherType,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Build a frame.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`MAX_PAYLOAD`]; segmentation is the
    /// sender's job and oversize frames indicate a protocol bug.
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: EtherType, payload: Vec<u8>) -> Frame {
        assert!(
            payload.len() as u64 <= MAX_PAYLOAD,
            "payload {} exceeds Ethernet MTU {}",
            payload.len(),
            MAX_PAYLOAD
        );
        Frame {
            src,
            dst,
            ethertype,
            payload,
        }
    }

    /// Bytes this frame occupies on the wire, including overhead, padding
    /// and the inter-frame gap — what serialization time is computed from.
    pub fn wire_size(&self) -> DataSize {
        let payload = (self.payload.len() as u64).max(MIN_PAYLOAD);
        DataSize::from_bytes(payload + WIRE_OVERHEAD)
    }

    /// Bytes buffered for this frame in NIC/switch memory (header + actual
    /// payload; the gap and preamble are not stored).
    pub fn buffer_size(&self) -> DataSize {
        DataSize::from_bytes(self.payload.len() as u64 + 18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_sim::Bandwidth;

    fn frame(n: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(0, 0),
            MacAddr::for_node(1, 0),
            EtherType::Other(0),
            vec![0u8; n],
        )
    }

    #[test]
    fn wire_size_includes_overhead_and_padding() {
        assert_eq!(frame(1500).wire_size().bytes(), 1538);
        assert_eq!(frame(46).wire_size().bytes(), 84);
        // Tiny payloads pad to the 64-byte minimum frame (84 on the wire).
        assert_eq!(frame(1).wire_size().bytes(), 84);
        assert_eq!(frame(0).wire_size().bytes(), 84);
    }

    #[test]
    fn full_size_frame_rate_matches_line_rate() {
        // Canonical check: 1 Gb/s carries ~81,274 max-size frames/s.
        let gig = Bandwidth::from_mbit_per_sec(1000);
        let t = gig.transfer_time(frame(1500).wire_size());
        let fps = 1.0 / t.as_secs_f64();
        assert!((fps - 81_274.0).abs() < 1.0, "fps = {fps}");
    }

    #[test]
    #[should_panic(expected = "exceeds Ethernet MTU")]
    fn oversize_payload_rejected() {
        frame(1501);
    }

    #[test]
    fn macs_are_unique_per_node_and_nic() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..16 {
            for nic in 0..3 {
                assert!(seen.insert(MacAddr::for_node(node, nic)));
            }
        }
    }

    #[test]
    fn buffer_size_is_smaller_than_wire_size() {
        let f = frame(1024);
        assert!(f.buffer_size().bytes() < f.wire_size().bytes());
        assert_eq!(f.buffer_size().bytes(), 1042);
    }
}
