//! Ethernet frames, addresses, and shared payload views.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

use acc_sim::DataSize;

/// Layer-2 overhead that occupies the wire per frame but never reaches
/// the payload: preamble + SFD (8) + dst/src/ethertype (14) + FCS (4) +
/// inter-frame gap (12).
pub const WIRE_OVERHEAD: u64 = 8 + 14 + 4 + 12;

/// Minimum Ethernet payload; shorter payloads are padded on the wire.
pub const MIN_PAYLOAD: u64 = 46;

/// Maximum standard Ethernet payload (no jumbo frames in 2001 commodity
/// gear, and the paper's INIC protocol deliberately uses 1024-byte
/// packets well under it).
pub const MAX_PAYLOAD: u64 = 1500;

/// A 48-bit MAC address, stored compactly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct MacAddr(pub u64);

impl MacAddr {
    /// Deterministic per-node address used by cluster builders: node `i`
    /// NIC `j` gets a distinct MAC.
    pub fn for_node(node: usize, nic: usize) -> MacAddr {
        MacAddr(0x02_00_00_00_00_00 | ((node as u64) << 8) | nic as u64)
    }

    /// The broadcast address.
    pub const BROADCAST: MacAddr = MacAddr(0xFF_FF_FF_FF_FF_FF);
}

/// The protocol carried by a frame. The TCP path wraps payload in IP+TCP
/// headers; the INIC path runs its application-specific protocol directly
/// on Ethernet (Section 4.2: "each design can have a protocol built
/// directly on Ethernet").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EtherType {
    /// IPv4 (carrying the modelled TCP).
    Ipv4,
    /// The INIC application-specific protocol.
    Inic,
    /// Anything else (tests).
    Other(u16),
}

/// Why a frame could not be constructed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// Payload exceeds [`MAX_PAYLOAD`]; segmentation is the sender's job
    /// and oversize frames indicate a protocol bug.
    Oversize {
        /// The offending payload length in bytes.
        len: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversize { len } => {
                write!(f, "payload {len} exceeds Ethernet MTU {MAX_PAYLOAD}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// A cheaply clonable view into immutable shared payload bytes.
///
/// Switch fan-out, retransmit buffers, and trace captures all hold the
/// *same* backing allocation behind an `Rc`; cloning a view (and thus a
/// [`Frame`]) bumps a refcount instead of deep-copying up to 1500 bytes.
/// The only mutation path is [`make_mut`](PayloadView::make_mut), which
/// is copy-on-write: a shared view materializes a private copy of just
/// its visible range, so impairment corruption on one replicated frame
/// never leaks into the other copies.
#[derive(Clone)]
pub struct PayloadView {
    bytes: Rc<Vec<u8>>,
    off: u32,
    len: u32,
}

impl PayloadView {
    /// An empty view.
    pub fn empty() -> PayloadView {
        PayloadView {
            bytes: Rc::new(Vec::new()),
            off: 0,
            len: 0,
        }
    }

    /// Wrap an owned buffer (no copy).
    pub fn new(bytes: Vec<u8>) -> PayloadView {
        let len = u32::try_from(bytes.len()).expect("payload buffer exceeds u32 range");
        PayloadView {
            bytes: Rc::new(bytes),
            off: 0,
            len,
        }
    }

    /// Bytes visible through this view.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[self.off as usize..(self.off + self.len) as usize]
    }

    /// A sub-view of `self` sharing the same backing allocation
    /// (`start..end` are offsets within this view, like slice indexing).
    ///
    /// # Panics
    /// Panics if the range is out of bounds — callers slice at most
    /// `self.len()`, so an overrun is a segmentation bug worth failing
    /// loudly on.
    pub fn subview(&self, start: usize, end: usize) -> PayloadView {
        assert!(
            start <= end && end <= self.len(),
            "subview {start}..{end} out of bounds for payload of {} bytes",
            self.len()
        );
        PayloadView {
            bytes: Rc::clone(&self.bytes),
            off: self.off + start as u32,
            len: (end - start) as u32,
        }
    }

    /// Copy the viewed bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        // acc-lint: allow(R7, reason = "the explicit copy-out API itself: callers opt into materialization; the forwarding path clones views instead")
        self.as_slice().to_vec()
    }

    /// Mutable access to the viewed bytes, copy-on-write.
    ///
    /// If the backing allocation is shared (other frames hold clones of
    /// this view) or the view covers a sub-range, the visible bytes are
    /// first materialized into a private full-range buffer; mutations
    /// then affect only this view.
    pub fn make_mut(&mut self) -> &mut [u8] {
        let whole = self.off == 0 && self.len as usize == self.bytes.len();
        if !whole || Rc::strong_count(&self.bytes) != 1 {
            // acc-lint: allow(R7, reason = "copy-on-write fallback: copies only when the allocation is shared or sub-ranged, the one sanctioned materialization point")
            *self = PayloadView::new(self.to_vec());
        }
        Rc::get_mut(&mut self.bytes).expect("payload COW buffer uniquely owned")
    }

    /// How many views (frames) currently share the backing allocation.
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.bytes)
    }
}

impl Deref for PayloadView {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for PayloadView {
    fn from(bytes: Vec<u8>) -> PayloadView {
        PayloadView::new(bytes)
    }
}

impl From<&[u8]> for PayloadView {
    fn from(bytes: &[u8]) -> PayloadView {
        // acc-lint: allow(R7, reason = "ingress conversion from borrowed bytes must own an allocation; runs at frame creation, never on the forwarding path")
        PayloadView::new(bytes.to_vec())
    }
}

impl PartialEq for PayloadView {
    fn eq(&self, other: &PayloadView) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PayloadView {}

impl PartialEq<Vec<u8>> for PayloadView {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<PayloadView> for Vec<u8> {
    fn eq(&self, other: &PayloadView) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for PayloadView {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl fmt::Debug for PayloadView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PayloadView")
            .field("len", &self.len)
            .field("off", &self.off)
            .field("shared", &(Rc::strong_count(&self.bytes) > 1))
            .finish()
    }
}

/// A simulated Ethernet frame.
///
/// The payload carries *real bytes* — the data that applications sort and
/// transform — so end-to-end correctness is checked, not just timing.
/// Cloning a frame shares the payload allocation (see [`PayloadView`]).
#[derive(Clone, Debug)]
pub struct Frame {
    /// Source address.
    pub src: MacAddr,
    /// Destination address.
    pub dst: MacAddr,
    /// Carried protocol.
    pub ethertype: EtherType,
    /// Payload bytes (shared, copy-on-write).
    pub payload: PayloadView,
}

impl Frame {
    /// Build a frame, rejecting oversize payloads.
    pub fn try_new(
        src: MacAddr,
        dst: MacAddr,
        ethertype: EtherType,
        payload: impl Into<PayloadView>,
    ) -> Result<Frame, FrameError> {
        let payload = payload.into();
        if payload.len() as u64 > MAX_PAYLOAD {
            return Err(FrameError::Oversize {
                len: payload.len() as u64,
            });
        }
        Ok(Frame {
            src,
            dst,
            ethertype,
            payload,
        })
    }

    /// Build a frame.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`MAX_PAYLOAD`]; segmentation is the
    /// sender's job and oversize frames indicate a protocol bug. Callers
    /// that would rather surface the error use [`try_new`](Self::try_new).
    pub fn new(
        src: MacAddr,
        dst: MacAddr,
        ethertype: EtherType,
        payload: impl Into<PayloadView>,
    ) -> Frame {
        Frame::try_new(src, dst, ethertype, payload)
            .unwrap_or_else(|e| panic!("frame {src:?} -> {dst:?}: {e}"))
    }

    /// Bytes this frame occupies on the wire, including overhead, padding
    /// and the inter-frame gap — what serialization time is computed from.
    pub fn wire_size(&self) -> DataSize {
        let payload = (self.payload.len() as u64).max(MIN_PAYLOAD);
        DataSize::from_bytes(payload + WIRE_OVERHEAD)
    }

    /// Bytes buffered for this frame in NIC/switch memory (header + actual
    /// payload; the gap and preamble are not stored).
    pub fn buffer_size(&self) -> DataSize {
        DataSize::from_bytes(self.payload.len() as u64 + 18)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_sim::Bandwidth;

    fn frame(n: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(0, 0),
            MacAddr::for_node(1, 0),
            EtherType::Other(0),
            vec![0u8; n],
        )
    }

    #[test]
    fn wire_size_includes_overhead_and_padding() {
        assert_eq!(frame(1500).wire_size().bytes(), 1538);
        assert_eq!(frame(46).wire_size().bytes(), 84);
        // Tiny payloads pad to the 64-byte minimum frame (84 on the wire).
        assert_eq!(frame(1).wire_size().bytes(), 84);
        assert_eq!(frame(0).wire_size().bytes(), 84);
    }

    #[test]
    fn full_size_frame_rate_matches_line_rate() {
        // Canonical check: 1 Gb/s carries ~81,274 max-size frames/s.
        let gig = Bandwidth::from_mbit_per_sec(1000);
        let t = gig.transfer_time(frame(1500).wire_size());
        let fps = 1.0 / t.as_secs_f64();
        assert!((fps - 81_274.0).abs() < 1.0, "fps = {fps}");
    }

    #[test]
    #[should_panic(expected = "exceeds Ethernet MTU")]
    fn oversize_payload_rejected() {
        frame(1501);
    }

    #[test]
    fn try_new_reports_oversize_without_panicking() {
        let err = Frame::try_new(
            MacAddr::for_node(0, 0),
            MacAddr::for_node(1, 0),
            EtherType::Other(0),
            vec![0u8; 1501],
        )
        .unwrap_err();
        assert_eq!(err, FrameError::Oversize { len: 1501 });
        assert!(err.to_string().contains("exceeds Ethernet MTU"));
    }

    #[test]
    fn macs_are_unique_per_node_and_nic() {
        let mut seen = std::collections::HashSet::new();
        for node in 0..16 {
            for nic in 0..3 {
                assert!(seen.insert(MacAddr::for_node(node, nic)));
            }
        }
    }

    #[test]
    fn buffer_size_is_smaller_than_wire_size() {
        let f = frame(1024);
        assert!(f.buffer_size().bytes() < f.wire_size().bytes());
        assert_eq!(f.buffer_size().bytes(), 1042);
    }

    #[test]
    fn cloned_frames_share_payload_allocation() {
        let f = frame(1000);
        let g = f.clone();
        let h = f.clone();
        assert_eq!(f.payload.ref_count(), 3);
        assert_eq!(g.payload, h.payload);
    }

    #[test]
    fn make_mut_on_shared_view_copies_on_write() {
        let mut f = frame(100);
        let g = f.clone();
        f.payload.make_mut()[0] ^= 0xFF;
        assert_ne!(f.payload[0], g.payload[0], "corruption leaked into clone");
        assert_eq!(g.payload, vec![0u8; 100], "shared copy must stay pristine");
        assert_eq!(g.payload.ref_count(), 1, "COW detached the mutated view");
    }

    #[test]
    fn make_mut_on_unique_view_mutates_in_place() {
        let mut v = PayloadView::new(vec![1, 2, 3]);
        let before = v.ref_count();
        v.make_mut()[1] = 9;
        assert_eq!(before, 1);
        assert_eq!(v, vec![1u8, 9, 3]);
    }

    #[test]
    fn subview_shares_backing_and_bounds_check() {
        let v = PayloadView::new((0u8..100).collect());
        let mid = v.subview(10, 20);
        assert_eq!(mid.len(), 10);
        assert_eq!(&mid[..], &(10u8..20).collect::<Vec<_>>()[..]);
        assert_eq!(v.ref_count(), 2, "subview shares the allocation");
        let nested = mid.subview(5, 10);
        assert_eq!(&nested[..], &(15u8..20).collect::<Vec<_>>()[..]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn subview_past_end_rejected() {
        PayloadView::new(vec![0; 10]).subview(5, 11);
    }

    #[test]
    fn make_mut_on_subview_materializes_only_visible_range() {
        let v = PayloadView::new((0u8..100).collect());
        let mut mid = v.subview(10, 20);
        mid.make_mut()[0] = 0xAA;
        assert_eq!(mid.len(), 10);
        assert_eq!(mid[0], 0xAA);
        assert_eq!(v[10], 10, "parent view untouched by COW");
    }
}
