//! A serializing egress port with a bounded drop-tail queue.
//!
//! Both NICs and switch outputs transmit through an [`EgressPort`]: frames
//! queue in port memory, serialize one at a time at line rate, then
//! propagate to the attached peer. The owning component receives a
//! [`PortTxDone`] event when serialization finishes so it can start the
//! next frame; the peer receives a [`FrameArrival`] when the last bit
//! lands.

use acc_sim::{Bandwidth, ComponentId, Ctx, DataSize, SimDuration};
use std::collections::VecDeque;

use crate::frame::Frame;
use crate::impair::{Impairment, Verdict};

/// Event delivered to a port's owner when the in-flight frame has fully
/// serialized; the owner must call [`EgressPort::tx_done`].
#[derive(Clone, Copy, Debug)]
pub struct PortTxDone {
    /// Which of the owner's ports finished (owner-assigned index).
    pub port: usize,
}

/// Event delivered to the component at the far end of the link when a
/// frame fully arrives.
#[derive(Debug)]
pub struct FrameArrival {
    /// The receiving component's port index (as configured on the sender).
    pub port: usize,
    /// The frame.
    pub frame: Frame,
}

/// One direction of a full-duplex link: a queue plus a serializer.
pub struct EgressPort {
    /// Line rate.
    rate: Bandwidth,
    /// Signal propagation + PHY latency to the peer.
    prop_delay: SimDuration,
    /// Destination component for [`FrameArrival`] events.
    peer: ComponentId,
    /// Port index presented to the peer.
    peer_port: usize,
    /// Owner's index for this port, echoed in [`PortTxDone`].
    own_port: usize,
    /// Queued frames not yet serializing.
    // acc-lint: allow(R9, reason = "drop-tail bounded in bytes, not frames: enqueue rejects any frame once `buffered + size` exceeds `capacity`, so the ring never outgrows capacity / min-frame-size entries")
    queue: VecDeque<Frame>,
    /// Bytes currently buffered (queue + in-flight frame).
    buffered: DataSize,
    /// Buffer capacity; arrivals beyond it are dropped (drop-tail).
    capacity: DataSize,
    /// Whether a frame is currently serializing.
    busy: bool,
    /// Frames dropped due to a full buffer.
    drops: u64,
    /// Frames fully transmitted.
    sent: u64,
    /// Optional fault model consulted per frame (None = pristine link).
    impair: Option<Impairment>,
    /// Optional stats scope: when set, the port publishes conservation
    /// counters (`frames_offered` = `frames_delivered` + `queue_drops` +
    /// `impair_drops`) into the registry so an external auditor can
    /// check them. `None` on the happy path — no per-frame stats cost.
    stats_label: Option<String>,
}

impl EgressPort {
    /// Create a port. `own_port` tags [`PortTxDone`] events; `peer_port`
    /// tags [`FrameArrival`] events at the far end.
    pub fn new(
        rate: Bandwidth,
        prop_delay: SimDuration,
        capacity: DataSize,
        peer: ComponentId,
        peer_port: usize,
        own_port: usize,
    ) -> EgressPort {
        EgressPort {
            rate,
            prop_delay,
            peer,
            peer_port,
            own_port,
            queue: VecDeque::new(),
            buffered: DataSize::ZERO,
            capacity,
            busy: false,
            drops: 0,
            sent: 0,
            impair: None,
            stats_label: None,
        }
    }

    /// Publish conservation counters for this port under `label`.
    pub fn set_stats_label(&mut self, label: impl Into<String>) {
        self.stats_label = Some(label.into());
    }

    /// Attach a fault model; every subsequent frame is judged by it.
    pub fn set_impairment(&mut self, imp: Impairment) {
        self.impair = Some(imp);
    }

    /// The attached fault model, if any (for reading counters).
    pub fn impairment(&self) -> Option<&Impairment> {
        self.impair.as_ref()
    }

    /// Enqueue a frame for transmission. Returns `false` (and counts a
    /// drop) if the buffer cannot hold it.
    pub fn enqueue(&mut self, frame: Frame, ctx: &mut Ctx) -> bool {
        let size = frame.buffer_size();
        if let Some(label) = &self.stats_label {
            ctx.stats().counter(label, "frames_offered").inc();
        }
        let capacity = self
            .impair
            .as_ref()
            .and_then(|i| i.capacity_override(ctx.now()))
            .map_or(self.capacity, |cap| cap.min(self.capacity));
        if self.buffered + size > capacity {
            self.drops += 1;
            if let Some(label) = &self.stats_label {
                ctx.stats().counter(label, "queue_drops").inc();
            }
            return false;
        }
        self.buffered += size;
        self.queue.push_back(frame);
        if !self.busy {
            self.start_next(ctx);
        }
        true
    }

    /// Owner callback for [`PortTxDone`]: the in-flight frame has left;
    /// start the next if any.
    pub fn tx_done(&mut self, ctx: &mut Ctx) {
        debug_assert!(self.busy, "tx_done on idle port");
        self.busy = false;
        if !self.queue.is_empty() {
            self.start_next(ctx);
        }
    }

    fn start_next(&mut self, ctx: &mut Ctx) {
        let mut frame = self.queue.pop_front().expect("start_next on empty queue");
        self.busy = true;
        self.buffered = self.buffered.saturating_sub(frame.buffer_size());
        let ser = self.rate.transfer_time(frame.wire_size());
        ctx.self_in(
            ser,
            PortTxDone {
                port: self.own_port,
            },
        );
        // The sender always pays full serialization time; the fault model
        // only decides what happens to the bits after they leave.
        let mut extra = SimDuration::ZERO;
        if let Some(imp) = self.impair.as_mut() {
            match imp.judge(ctx.now()) {
                Verdict::Drop => {
                    if let Some(label) = &self.stats_label {
                        ctx.stats().counter(label, "impair_drops").inc();
                    }
                    return;
                }
                // COW: a frame replicated by switch fan-out detaches its
                // private payload copy here, so corruption on this link
                // never leaks into the other replicas.
                Verdict::Corrupt => imp.corrupt_payload(frame.payload.make_mut()),
                Verdict::Delay(d) => extra = d,
                Verdict::Deliver => {}
            }
        }
        self.sent += 1;
        if let Some(label) = &self.stats_label {
            ctx.stats().counter(label, "frames_delivered").inc();
        }
        ctx.send_in(
            ser + self.prop_delay + extra,
            self.peer,
            FrameArrival {
                port: self.peer_port,
                frame,
            },
        );
    }

    /// Bytes currently buffered awaiting serialization.
    pub fn buffered(&self) -> DataSize {
        self.buffered
    }

    /// Frames dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Frames fully transmitted so far.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Whether a frame is serializing right now.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Line rate of this port.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, MacAddr};
    use acc_sim::{Component, SimTime, Simulation};
    use std::any::Any;

    /// Test sender: owns one EgressPort, sends `n` frames at t=0.
    struct Sender {
        port: Option<EgressPort>,
        to_send: Vec<Frame>,
    }

    impl Component for Sender {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            let port = self
                .port
                .as_mut()
                .expect("sender: egress port never installed before first event");
            if ev.downcast_ref::<PortTxDone>().is_some() {
                port.tx_done(ctx);
            } else if ev.downcast_ref::<()>().is_some() {
                for f in self.to_send.drain(..) {
                    port.enqueue(f, ctx);
                }
            } else {
                panic!("unexpected event");
            }
        }
        fn name(&self) -> &str {
            "sender"
        }
    }

    /// Test receiver: records arrival times and payload sizes.
    struct Receiver {
        arrivals: Vec<(SimTime, usize, usize)>,
    }

    impl Component for Receiver {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            let arr = ev
                .downcast::<FrameArrival>()
                .expect("receiver wants frames");
            self.arrivals
                .push((ctx.now(), arr.port, arr.frame.payload.len()));
        }
        fn name(&self) -> &str {
            "receiver"
        }
    }

    fn frame(n: usize) -> Frame {
        Frame::new(
            MacAddr::for_node(0, 0),
            MacAddr::for_node(1, 0),
            EtherType::Other(0),
            vec![7u8; n],
        )
    }

    fn build(n_frames: usize, capacity: DataSize) -> (Simulation, acc_sim::ComponentId) {
        let mut sim = Simulation::new(0);
        let tx = sim.reserve_id();
        let rx = sim.add(Receiver { arrivals: vec![] });
        let port = EgressPort::new(
            Bandwidth::from_mbit_per_sec(1000),
            SimDuration::from_nanos(500),
            capacity,
            rx,
            3,
            0,
        );
        sim.register(
            tx,
            Sender {
                port: Some(port),
                to_send: (0..n_frames).map(|_| frame(1024)).collect(),
            },
        );
        sim.schedule_at(SimTime::ZERO, tx, ());
        (sim, rx)
    }

    #[test]
    fn frames_serialize_back_to_back() {
        let (mut sim, rx) = build(3, DataSize::from_kib(64));
        sim.run();
        let arr = &sim.component::<Receiver>(rx).arrivals;
        assert_eq!(arr.len(), 3);
        // 1024B payload → 1062B wire → 8.496µs at 1 Gb/s; +500ns prop.
        let ser = 8496u64; // ns
        assert_eq!(arr[0].0.as_nanos(), ser + 500);
        assert_eq!(arr[1].0.as_nanos(), 2 * ser + 500);
        assert_eq!(arr[2].0.as_nanos(), 3 * ser + 500);
        assert!(arr.iter().all(|&(_, p, len)| p == 3 && len == 1024));
    }

    #[test]
    fn drop_tail_when_buffer_full() {
        // Capacity for ~2 frames (1042 buffered bytes each).
        let (mut sim, rx) = build(10, DataSize::from_bytes(2200));
        sim.run();
        let delivered = sim.component::<Receiver>(rx).arrivals.len();
        // First frame starts serializing immediately (leaves the buffer),
        // then 2 more fit; subsequent are dropped.
        assert!((2..10).contains(&delivered), "delivered {delivered}");
    }

    #[test]
    fn port_counters_track_activity() {
        let (mut sim, _) = build(5, DataSize::from_kib(64));
        let tx = acc_sim::ComponentId::from_raw(0);
        sim.run();
        let sender = sim.component::<Sender>(tx);
        let port = sender.port.as_ref().unwrap();
        assert_eq!(port.sent(), 5);
        assert_eq!(port.drops(), 0);
        assert!(!port.is_busy());
        assert_eq!(port.buffered(), DataSize::ZERO);
    }
}
