//! Deterministic link impairment: the fault-injection hook every
//! [`EgressPort`](crate::port::EgressPort) consults before a frame goes
//! on the wire.
//!
//! An `Impairment` owns its own seeded RNG stream, so the faults a link
//! experiences depend only on the plan seed and that link's identity —
//! never on what any other link is doing or on component registration
//! order. Ports without an impairment attached pay nothing (a `None`
//! check per frame).

use acc_sim::{DataSize, SimDuration, SimRng, SimTime};

/// What happened to the frames a link impaired, readable after a run.
#[derive(Debug, Default, Clone, Copy)]
pub struct ImpairCounters {
    /// Frames silently discarded by random loss.
    pub lost: u64,
    /// Frames delivered with flipped payload bytes.
    pub corrupted: u64,
    /// Frames delivered late (reorder or jitter).
    pub delayed: u64,
    /// Frames discarded because the link was in an outage window.
    pub outage_drops: u64,
}

/// The fate of one frame, decided at serialization time.
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Discard after serialization (the sender still paid line time).
    Drop,
    /// Deliver with corrupted payload bytes.
    Corrupt,
    /// Deliver with extra propagation delay (later frames may overtake).
    Delay(SimDuration),
}

/// Per-link fault model: probabilistic loss/corruption/reorder/jitter
/// plus absolute-time outage and buffer-squeeze windows.
#[derive(Debug, Clone)]
pub struct Impairment {
    rng: SimRng,
    loss_prob: f64,
    corrupt_prob: f64,
    reorder_prob: f64,
    reorder_delay: SimDuration,
    jitter_max: SimDuration,
    outages: Vec<(SimTime, SimTime)>,
    squeezes: Vec<(SimTime, SimTime, DataSize)>,
    counters: ImpairCounters,
}

impl Impairment {
    /// An impairment that does nothing until configured, drawing from
    /// `rng` (fork or derive it per link for independent streams).
    pub fn new(rng: SimRng) -> Impairment {
        Impairment {
            rng,
            loss_prob: 0.0,
            corrupt_prob: 0.0,
            reorder_prob: 0.0,
            reorder_delay: SimDuration::ZERO,
            jitter_max: SimDuration::ZERO,
            outages: Vec::new(),
            squeezes: Vec::new(),
            counters: ImpairCounters::default(),
        }
    }

    /// Drop each frame independently with probability `p`.
    #[must_use]
    pub fn with_loss(mut self, p: f64) -> Impairment {
        self.loss_prob = (self.loss_prob + p).min(1.0);
        self
    }

    /// Corrupt each frame's payload independently with probability `p`.
    #[must_use]
    pub fn with_corruption(mut self, p: f64) -> Impairment {
        self.corrupt_prob = (self.corrupt_prob + p).min(1.0);
        self
    }

    /// Delay each frame by `delay` with probability `p`, letting later
    /// frames overtake it.
    #[must_use]
    pub fn with_reorder(mut self, p: f64, delay: SimDuration) -> Impairment {
        self.reorder_prob = (self.reorder_prob + p).min(1.0);
        self.reorder_delay = self.reorder_delay.max(delay);
        self
    }

    /// Add uniform random delay in `[0, max)` to every frame.
    #[must_use]
    pub fn with_jitter(mut self, max: SimDuration) -> Impairment {
        self.jitter_max = self.jitter_max.max(max);
        self
    }

    /// Drop every frame serialized in `[from, until)`.
    #[must_use]
    pub fn with_outage(mut self, from: SimTime, until: SimTime) -> Impairment {
        self.outages.push((from, until));
        self
    }

    /// Cap the port buffer at `capacity` during `[from, until)`.
    #[must_use]
    pub fn with_squeeze(mut self, from: SimTime, until: SimTime, capacity: DataSize) -> Impairment {
        self.squeezes.push((from, until, capacity));
        self
    }

    /// Whether any fault is configured (a fully-idle impairment still
    /// draws RNG words, so callers may prefer to drop it).
    pub fn is_active(&self) -> bool {
        self.loss_prob > 0.0
            || self.corrupt_prob > 0.0
            || self.reorder_prob > 0.0
            || self.jitter_max > SimDuration::ZERO
            || !self.outages.is_empty()
            || !self.squeezes.is_empty()
    }

    /// Decide the fate of one frame serialized at `now`.
    ///
    /// All probabilistic draws happen in a fixed order on every call, so
    /// the random stream a link consumes depends only on how many frames
    /// it carried — not on which faults fired.
    pub fn judge(&mut self, now: SimTime) -> Verdict {
        if self.outages.iter().any(|&(a, b)| now >= a && now < b) {
            self.counters.outage_drops += 1;
            return Verdict::Drop;
        }
        let lose = self.loss_prob > 0.0 && self.rng.gen_bool(self.loss_prob);
        let corrupt = self.corrupt_prob > 0.0 && self.rng.gen_bool(self.corrupt_prob);
        let reorder = self.reorder_prob > 0.0 && self.rng.gen_bool(self.reorder_prob);
        let jitter = if self.jitter_max > SimDuration::ZERO {
            SimDuration::from_ps(self.rng.gen_range(self.jitter_max.as_ps().max(1)))
        } else {
            SimDuration::ZERO
        };
        if lose {
            self.counters.lost += 1;
            return Verdict::Drop;
        }
        if corrupt {
            self.counters.corrupted += 1;
            return Verdict::Corrupt;
        }
        let extra = jitter
            + if reorder {
                self.reorder_delay
            } else {
                SimDuration::ZERO
            };
        if extra > SimDuration::ZERO {
            self.counters.delayed += 1;
            return Verdict::Delay(extra);
        }
        Verdict::Deliver
    }

    /// Flip one to three payload bytes (never a no-op on a non-empty
    /// payload, so checksums must catch it).
    pub fn corrupt_payload(&mut self, payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let flips = 1 + self.rng.gen_range(3) as usize;
        for _ in 0..flips {
            let i = self.rng.gen_range(payload.len() as u64) as usize;
            // XOR with a non-zero mask always changes the byte.
            payload[i] ^= 0x55;
        }
    }

    /// The buffer capacity cap active at `now`, if any squeeze window
    /// covers it (the tightest wins).
    pub fn capacity_override(&self, now: SimTime) -> Option<DataSize> {
        self.squeezes
            .iter()
            .filter(|&&(a, b, _)| now >= a && now < b)
            .map(|&(_, _, c)| c)
            .min()
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> ImpairCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imp() -> Impairment {
        Impairment::new(SimRng::seed_from(7))
    }

    #[test]
    fn idle_impairment_always_delivers() {
        let mut i = imp();
        assert!(!i.is_active());
        for _ in 0..100 {
            assert!(matches!(i.judge(SimTime::ZERO), Verdict::Deliver));
        }
        let c = i.counters();
        assert_eq!(c.lost + c.corrupted + c.delayed + c.outage_drops, 0);
    }

    #[test]
    fn loss_rate_roughly_respected_and_deterministic() {
        let count = |seed: u64| {
            let mut i = Impairment::new(SimRng::seed_from(seed)).with_loss(0.25);
            (0..4000)
                .filter(|_| matches!(i.judge(SimTime::ZERO), Verdict::Drop))
                .count()
        };
        let a = count(42);
        assert_eq!(a, count(42), "same seed, same fate sequence");
        let frac = a as f64 / 4000.0;
        assert!((frac - 0.25).abs() < 0.05, "loss fraction {frac}");
    }

    #[test]
    fn outage_window_drops_everything_inside() {
        let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        let mut i = imp().with_outage(t(10), t(20));
        assert!(matches!(i.judge(t(5)), Verdict::Deliver));
        assert!(matches!(i.judge(t(10)), Verdict::Drop));
        assert!(matches!(i.judge(t(19)), Verdict::Drop));
        assert!(matches!(i.judge(t(20)), Verdict::Deliver));
        assert_eq!(i.counters().outage_drops, 2);
    }

    #[test]
    fn corruption_always_changes_payload() {
        let mut i = imp().with_corruption(1.0);
        for n in [1usize, 2, 100, 1024] {
            let orig = vec![0xA0u8; n];
            let mut p = orig.clone();
            assert!(matches!(i.judge(SimTime::ZERO), Verdict::Corrupt));
            i.corrupt_payload(&mut p);
            assert_ne!(p, orig, "payload of {n} bytes unchanged");
        }
    }

    #[test]
    fn squeeze_caps_capacity_only_in_window() {
        let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        let i = imp().with_squeeze(t(1), t(2), DataSize::from_kib(4));
        assert_eq!(i.capacity_override(t(0)), None);
        assert_eq!(i.capacity_override(t(1)), Some(DataSize::from_kib(4)));
        assert_eq!(i.capacity_override(t(2)), None);
    }
}
