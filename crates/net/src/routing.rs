//! Deterministic minimal routing with precomputed failover tables.
//!
//! [`compute_schedule`] turns a [`Topology`] plus a fault timeline
//! (trunk-down windows, switch kills) into a sequence of [`Epoch`]s.
//! Each epoch carries one complete per-switch next-hop table computed by
//! BFS over the *live* graph of that epoch, so failover is not a
//! reactive protocol but a precomputed table swap at the fault boundary
//! — deterministic by construction, with no convergence transient to
//! model.
//!
//! Tie-breaking between equal-cost next hops is shape-specific:
//!
//! * **Fat-tree** — D-mod-k / ECMP-rank: among the sorted candidate
//!   set, destination rank `r` takes candidate `r % len`. On a trunk
//!   failure the candidate set shrinks and the same rule lands on the
//!   surviving sibling (the "ECMP-rank fallback").
//! * **Torus** — dimension order: prefer the lowest dimension, positive
//!   direction first. A failed ring link makes BFS route the ±1 detour
//!   through the next dimension.
//!
//! Because every hop strictly decreases BFS distance to the
//! destination's home switch, routes are loop-free and never bounce a
//! frame back out its ingress trunk.
//!
//! Destinations with no live path surface per-epoch as a structured
//! [`PartitionReport`] (unreachable rank set, cut trunks, dead
//! switches) so the cluster layer can attribute stalls to the fabric
//! instead of a silent watchdog trip.

use std::collections::BTreeMap;
use std::fmt;

use acc_sim::SimTime;

use crate::fabric::{FabricSpec, Topology};
use crate::frame::MacAddr;

/// One NIC attachment point: a MAC homed at a switch, owned by a rank.
/// Primary NICs and (when wired) fallback NICs are both attachments.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Attachment {
    /// The NIC's MAC address (the routing key).
    pub mac: MacAddr,
    /// The switch the NIC's uplink lands on.
    pub switch: usize,
    /// The owning rank (drives D-mod-k tie-breaking).
    pub rank: usize,
}

/// A trunk outage window: the link `(a, b)` carries nothing during
/// `[from, until)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrunkOutage {
    /// One endpoint switch id.
    pub a: usize,
    /// The other endpoint switch id.
    pub b: usize,
    /// Outage start (inclusive).
    pub from: SimTime,
    /// Outage end (exclusive).
    pub until: SimTime,
}

/// Ranks the fabric cannot currently reach, and why.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct PartitionReport {
    /// Ranks with no live attachment in the main component, sorted.
    pub unreachable_ranks: Vec<usize>,
    /// Trunks severed by outage windows in this epoch, sorted.
    pub cut_trunks: Vec<(usize, usize)>,
    /// Switches dead in this epoch, sorted.
    pub dead_switches: Vec<usize>,
}

impl fmt::Display for PartitionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ranks {:?} unreachable", self.unreachable_ranks)?;
        if !self.dead_switches.is_empty() {
            write!(f, "; dead switches {:?}", self.dead_switches)?;
        }
        if !self.cut_trunks.is_empty() {
            write!(f, "; cut trunks {:?}", self.cut_trunks)?;
        }
        Ok(())
    }
}

/// Routing state for one fault-homogeneous time interval.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Epoch {
    /// When this epoch's tables take effect.
    pub start: SimTime,
    /// Per-switch next-hop table: destination MAC → neighbor switch id.
    /// Locally-attached MACs are resolved by the switch's own MAC table
    /// and do not appear here.
    pub tables: Vec<BTreeMap<MacAddr, usize>>,
    /// Ranks unreachable in this epoch, if any.
    pub partition: Option<PartitionReport>,
    /// Worst-case switches traversed between any two reachable
    /// attachments (1 on a single switch; 5 on a clean inter-pod
    /// fat-tree path). Drives deadline hop-inflation pricing.
    pub max_path_switches: usize,
}

/// The full routing timeline for a run: epochs sorted by start time,
/// the first at [`SimTime::ZERO`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FabricSchedule {
    /// Fault-homogeneous intervals in time order.
    pub epochs: Vec<Epoch>,
}

impl FabricSchedule {
    /// The epoch in effect at `now`.
    pub fn epoch_at(&self, now: SimTime) -> &Epoch {
        let mut cur = &self.epochs[0];
        for e in &self.epochs {
            if e.start <= now {
                cur = e;
            }
        }
        cur
    }

    /// Worst-case hop inflation across all epochs, relative to the
    /// single-switch baseline of 1 (always >= 1).
    pub fn max_inflation(&self) -> usize {
        self.epochs
            .iter()
            .map(|e| e.max_path_switches)
            .max()
            .unwrap_or(1)
            .max(1)
    }

    /// The first partition report anywhere in the timeline, if any.
    pub fn first_partition(&self) -> Option<&PartitionReport> {
        self.epochs.iter().find_map(|e| e.partition.as_ref())
    }
}

/// Compute the per-epoch routing timeline for `topo` under the given
/// fault schedule. Pure and deterministic: identical inputs produce
/// identical tables regardless of build order or thread count.
pub fn compute_schedule(
    topo: &Topology,
    attachments: &[Attachment],
    outages: &[TrunkOutage],
    switch_kills: &[(usize, SimTime)],
) -> FabricSchedule {
    let mut boundaries: Vec<SimTime> = vec![SimTime::ZERO];
    for o in outages {
        boundaries.push(o.from);
        boundaries.push(o.until);
    }
    for &(_, at) in switch_kills {
        boundaries.push(at);
    }
    boundaries.sort_unstable();
    boundaries.dedup();

    let epochs = boundaries
        .into_iter()
        .map(|start| build_epoch(topo, attachments, outages, switch_kills, start))
        .collect();
    FabricSchedule { epochs }
}

fn build_epoch(
    topo: &Topology,
    attachments: &[Attachment],
    outages: &[TrunkOutage],
    switch_kills: &[(usize, SimTime)],
    start: SimTime,
) -> Epoch {
    let n = topo.switch_count;
    let mut dead = vec![false; n];
    let mut dead_switches = Vec::new();
    for &(s, at) in switch_kills {
        if at <= start && !dead[s] {
            dead[s] = true;
            dead_switches.push(s);
        }
    }
    dead_switches.sort_unstable();
    let mut cut_trunks: Vec<(usize, usize)> = outages
        .iter()
        .filter(|o| o.from <= start && start < o.until)
        .map(|o| (o.a.min(o.b), o.a.max(o.b)))
        .filter(|&(a, b)| topo.has_trunk(a, b))
        .collect();
    cut_trunks.sort_unstable();
    cut_trunks.dedup();

    let live_link = |a: usize, b: usize| -> bool {
        let key = (a.min(b), a.max(b));
        !dead[a] && !dead[b] && cut_trunks.binary_search(&key).is_err()
    };

    let mut tables: Vec<BTreeMap<MacAddr, usize>> = vec![BTreeMap::new(); n];
    let mut max_path_switches = 1usize;

    for dst in attachments {
        if dead[dst.switch] {
            continue; // no switch can reach it; lookups fall to unroutable
        }
        let dist = bfs(topo, dst.switch, &dead, &live_link);
        // Hop-inflation bookkeeping: longest live route from any other
        // attachment's home to this one.
        for src in attachments {
            if src.mac == dst.mac || dead[src.switch] {
                continue;
            }
            if let Some(d) = dist[src.switch] {
                max_path_switches = max_path_switches.max(d + 1);
            }
        }
        for s in 0..n {
            if dead[s] || s == dst.switch {
                continue;
            }
            let Some(ds) = dist[s] else { continue };
            let candidates: Vec<usize> = topo
                .neighbors(s)
                .iter()
                .copied()
                .filter(|&nb| live_link(s, nb) && dist[nb] == Some(ds - 1))
                .collect();
            if candidates.is_empty() {
                continue;
            }
            let pick = match topo.spec {
                FabricSpec::FatTree { .. } => candidates[dst.rank % candidates.len()],
                FabricSpec::Torus3D { .. } => *candidates
                    .iter()
                    .min_by_key(|&&nb| match topo.torus_edge(s, nb) {
                        Some((dim, plus)) => (dim, usize::from(!plus)),
                        None => (usize::MAX, 0),
                    })
                    .expect("non-empty candidate set"),
                FabricSpec::SingleSwitch => candidates[0],
            };
            tables[s].insert(dst.mac, pick);
        }
    }

    let partition =
        detect_partition(topo, attachments, &dead, &live_link).map(|unreachable| PartitionReport {
            unreachable_ranks: unreachable,
            cut_trunks: cut_trunks.clone(),
            dead_switches: dead_switches.clone(),
        });

    Epoch {
        start,
        tables,
        partition,
        max_path_switches,
    }
}

fn bfs(
    topo: &Topology,
    from: usize,
    dead: &[bool],
    live_link: &impl Fn(usize, usize) -> bool,
) -> Vec<Option<usize>> {
    let mut dist = vec![None; topo.switch_count];
    if dead[from] {
        return dist;
    }
    dist[from] = Some(0);
    let mut frontier = vec![from];
    let mut d = 0usize;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &s in &frontier {
            for &nb in topo.neighbors(s) {
                if dist[nb].is_none() && live_link(s, nb) {
                    dist[nb] = Some(d);
                    next.push(nb);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// Sorted ranks with no live attachment in the main component (the
/// component holding the lowest surviving rank's first live
/// attachment), or `None` if every rank is reachable.
fn detect_partition(
    topo: &Topology,
    attachments: &[Attachment],
    dead: &[bool],
    live_link: &impl Fn(usize, usize) -> bool,
) -> Option<Vec<usize>> {
    let p = topo.home.len();
    if p == 0 {
        return None;
    }
    // Component labels over live switches.
    let mut comp: Vec<Option<usize>> = vec![None; topo.switch_count];
    let mut next_label = 0usize;
    for s in 0..topo.switch_count {
        if dead[s] || comp[s].is_some() {
            continue;
        }
        let dist = bfs(topo, s, dead, live_link);
        for (t, d) in dist.iter().enumerate() {
            if d.is_some() {
                comp[t] = Some(next_label);
            }
        }
        next_label += 1;
    }
    let live_comps = |rank: usize| -> Vec<usize> {
        let mut cs: Vec<usize> = attachments
            .iter()
            .filter(|a| a.rank == rank && !dead[a.switch])
            .filter_map(|a| comp[a.switch])
            .collect();
        cs.sort_unstable();
        cs.dedup();
        cs
    };
    let reference = (0..p).find_map(|r| live_comps(r).first().copied())?;
    let unreachable: Vec<usize> = (0..p)
        .filter(|&r| !live_comps(r).contains(&reference))
        .collect();
    if unreachable.is_empty() {
        None
    } else {
        Some(unreachable)
    }
}

/// Walk the routed path of `mac` starting at switch `from` under
/// `epoch`'s tables; returns the visited switch sequence, or `None` if
/// a lookup dead-ends. Panics if the walk exceeds `switch_count` hops
/// (a routing loop — forbidden by construction). Test/debug helper.
pub fn walk_path(
    topo: &Topology,
    epoch: &Epoch,
    from: usize,
    mac: MacAddr,
    home: usize,
) -> Option<Vec<usize>> {
    let mut path = vec![from];
    let mut cur = from;
    while cur != home {
        let next = *epoch.tables[cur].get(&mac)?;
        path.push(next);
        assert!(
            path.len() <= topo.switch_count,
            "routing loop for {mac:?}: {path:?}"
        );
        cur = next;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_sim::SimDuration;

    fn primaries(topo: &Topology) -> Vec<Attachment> {
        topo.home
            .iter()
            .enumerate()
            .map(|(rank, &switch)| Attachment {
                mac: MacAddr::for_node(rank, 0),
                switch,
                rank,
            })
            .collect()
    }

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn clean_fat_tree_routes_every_pair() {
        let topo = FabricSpec::FatTree { k: 4 }.build(16);
        let atts = primaries(&topo);
        let sched = compute_schedule(&topo, &atts, &[], &[]);
        assert_eq!(sched.epochs.len(), 1);
        let e = &sched.epochs[0];
        assert!(e.partition.is_none());
        assert_eq!(e.max_path_switches, 5, "inter-pod: edge-agg-core-agg-edge");
        for dst in &atts {
            for src in &atts {
                if src.rank == dst.rank {
                    continue;
                }
                let path = walk_path(&topo, e, src.switch, dst.mac, dst.switch)
                    .expect("reachable fault-free");
                assert!(path.len() <= 5);
            }
        }
    }

    #[test]
    fn fat_tree_ecmp_spreads_by_rank() {
        let topo = FabricSpec::FatTree { k: 4 }.build(16);
        let atts = primaries(&topo);
        let sched = compute_schedule(&topo, &atts, &[], &[]);
        let t0 = &sched.epochs[0].tables[0]; // edge 0
                                             // Destinations outside pod 0 split across both aggs (8 and 9).
        let ups: std::collections::BTreeSet<usize> = (4..16)
            .map(|r| *t0.get(&MacAddr::for_node(r, 0)).expect("routed"))
            .collect();
        assert_eq!(ups, [8, 9].into_iter().collect());
    }

    #[test]
    fn torus_uses_dimension_order() {
        let topo = FabricSpec::Torus3D { dims: [2, 2, 2] }.build(8);
        let atts = primaries(&topo);
        let sched = compute_schedule(&topo, &atts, &[], &[]);
        let e = &sched.epochs[0];
        // 0 -> 7 (opposite corner): x first, then y, then z.
        let path = walk_path(&topo, e, 0, MacAddr::for_node(7, 0), 7).expect("routed");
        assert_eq!(path, vec![0, 1, 3, 7]);
    }

    #[test]
    fn trunk_outage_reroutes_then_heals() {
        let topo = FabricSpec::Torus3D { dims: [4, 1, 1] }.build(4);
        let atts = primaries(&topo);
        // Cut 0-1 for [10ms, 20ms): 0 -> 1 must detour the long way.
        let out = TrunkOutage {
            a: 0,
            b: 1,
            from: at(10),
            until: at(20),
        };
        let sched = compute_schedule(&topo, &atts, &[out], &[]);
        assert_eq!(sched.epochs.len(), 3);
        let dst = MacAddr::for_node(1, 0);
        assert_eq!(
            walk_path(&topo, sched.epoch_at(SimTime::ZERO), 0, dst, 1).expect("direct"),
            vec![0, 1]
        );
        assert_eq!(
            walk_path(&topo, sched.epoch_at(at(15)), 0, dst, 1).expect("detour"),
            vec![0, 3, 2, 1],
            "ring detour the long way around"
        );
        assert_eq!(
            walk_path(&topo, sched.epoch_at(at(25)), 0, dst, 1).expect("healed"),
            vec![0, 1]
        );
        assert_eq!(sched.max_inflation(), 4);
        assert!(sched.first_partition().is_none());
    }

    #[test]
    fn severed_ring_partitions_with_report() {
        // 4-ring with both links around rank 3 cut: 3 is unreachable.
        let topo = FabricSpec::Torus3D { dims: [4, 1, 1] }.build(4);
        let atts = primaries(&topo);
        let outs = [
            TrunkOutage {
                a: 2,
                b: 3,
                from: at(10),
                until: at(30),
            },
            TrunkOutage {
                a: 3,
                b: 0,
                from: at(10),
                until: at(30),
            },
        ];
        let sched = compute_schedule(&topo, &atts, &outs, &[]);
        let mid = sched.epoch_at(at(15));
        let part = mid.partition.as_ref().expect("partitioned");
        assert_eq!(part.unreachable_ranks, vec![3]);
        assert_eq!(part.cut_trunks, vec![(0, 3), (2, 3)]);
        assert!(part.dead_switches.is_empty());
        assert!(mid.tables[0].get(&MacAddr::for_node(3, 0)).is_none());
        // Healed epoch routes again.
        assert!(sched.epoch_at(at(30)).partition.is_none());
    }

    #[test]
    fn switch_kill_fails_over_ecmp_sibling() {
        let topo = FabricSpec::FatTree { k: 4 }.build(16);
        let atts = primaries(&topo);
        // Kill agg 8 (pod 0) at 5ms: edge 0's uplinks collapse onto agg 9.
        let sched = compute_schedule(&topo, &atts, &[], &[(8, at(5))]);
        let e = sched.epoch_at(at(6));
        for r in 4..16 {
            assert_eq!(
                e.tables[0].get(&MacAddr::for_node(r, 0)),
                Some(&9),
                "rank {r} must fail over to the surviving agg"
            );
        }
        // Intra-pod pairs still reachable; no partition (all ranks still
        // have a live edge switch).
        assert!(e.partition.is_none());
    }

    #[test]
    fn dead_edge_switch_reports_partition() {
        let topo = FabricSpec::FatTree { k: 4 }.build(16);
        let atts = primaries(&topo);
        // Edge 0 seats ranks 0 and 1; killing it severs both.
        let sched = compute_schedule(&topo, &atts, &[], &[(0, at(5))]);
        let e = sched.epoch_at(at(6));
        let part = e.partition.as_ref().expect("partitioned");
        assert_eq!(part.unreachable_ranks, vec![0, 1]);
        assert_eq!(part.dead_switches, vec![0]);
        // With a fallback attachment on another edge, the same ranks
        // stay reachable.
        let mut with_fb = atts.clone();
        with_fb.push(Attachment {
            mac: MacAddr::for_node(0, 1),
            switch: topo.fallback_home(0),
            rank: 0,
        });
        with_fb.push(Attachment {
            mac: MacAddr::for_node(1, 1),
            switch: topo.fallback_home(1),
            rank: 1,
        });
        let sched = compute_schedule(&topo, &with_fb, &[], &[(0, at(5))]);
        assert!(sched.epoch_at(at(6)).partition.is_none());
    }

    #[test]
    fn tables_identical_across_rebuilds() {
        let topo = FabricSpec::FatTree { k: 4 }.build(16);
        let atts = primaries(&topo);
        let kills = [(8usize, at(5))];
        let a = compute_schedule(&topo, &atts, &[], &kills);
        let b = compute_schedule(&topo, &atts, &[], &kills);
        assert_eq!(a, b);
    }
}
