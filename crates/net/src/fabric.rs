//! Multi-switch fabric topologies built from the existing output-queued
//! [`Switch`](crate::switch::Switch).
//!
//! A [`FabricSpec`] names the shape — the paper's single switch, a k-ary
//! fat-tree (the scale-out datacenter shape), or a 3D torus (the APEnet+
//! shape) — and [`FabricSpec::build`] expands it into a [`Topology`]:
//! switch count, rank→edge-switch homes, and the canonical trunk list.
//! Everything downstream (routing tables, fault validation, cluster
//! wiring, deadline pricing) derives from the `Topology` alone, so all
//! consumers agree on switch ids and trunk identities by construction.
//!
//! Switch id layout is deterministic and documented per shape:
//!
//! * **Fat-tree(k)** — `k` pods of `k/2` edge + `k/2` aggregation
//!   switches plus `(k/2)²` cores. Ids: edges `0..k²/2` (pod-major),
//!   then aggregations `k²/2..k²`, then cores `k²..k²+(k/2)²`.
//!   Edge `e` of pod `P` links to every aggregation of `P`; aggregation
//!   `a` of `P` links to cores `a·k/2..(a+1)·k/2`. Hosts fill edge
//!   switches in rank order, `k/2` per edge, capacity `k³/4`.
//! * **Torus3D(dims)** — one switch per lattice point, id
//!   `x + dx·(y + dy·z)`; ±1 ring links per dimension of size ≥ 2 (a
//!   2-ring is a single link, not a doubled one). One host per switch,
//!   capacity `dx·dy·dz`.

use std::collections::BTreeSet;
use std::fmt;

/// The fabric shape a cluster run is wired with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FabricSpec {
    /// The paper's baseline: every rank on one output-queued switch.
    SingleSwitch,
    /// k-ary fat-tree (k even): full bisection, multipath via ECMP.
    FatTree {
        /// Pod arity; capacity is `k³/4` hosts.
        k: usize,
    },
    /// 3D torus of the given dimension sizes, one host per switch.
    Torus3D {
        /// Ring sizes per dimension; capacity is their product.
        dims: [usize; 3],
    },
}

impl FabricSpec {
    /// Stable text label, round-tripped by [`FabricSpec::parse`] (used
    /// by soak repro artifacts and campaign tables).
    pub fn label(&self) -> String {
        match self {
            FabricSpec::SingleSwitch => "single".to_string(),
            FabricSpec::FatTree { k } => format!("fat-tree:{k}"),
            FabricSpec::Torus3D { dims } => {
                format!("torus:{}x{}x{}", dims[0], dims[1], dims[2])
            }
        }
    }

    /// Parse a [`label`](FabricSpec::label) back into a spec.
    pub fn parse(text: &str) -> Result<FabricSpec, String> {
        if text == "single" {
            return Ok(FabricSpec::SingleSwitch);
        }
        if let Some(k) = text.strip_prefix("fat-tree:") {
            let k: usize = k
                .parse()
                .map_err(|_| format!("bad fat-tree arity in {text:?}"))?;
            return Ok(FabricSpec::FatTree { k });
        }
        if let Some(dims) = text.strip_prefix("torus:") {
            let parts: Vec<&str> = dims.split('x').collect();
            if parts.len() != 3 {
                return Err(format!("torus label needs 3 dims: {text:?}"));
            }
            let mut d = [0usize; 3];
            for (slot, part) in d.iter_mut().zip(&parts) {
                *slot = part
                    .parse()
                    .map_err(|_| format!("bad torus dimension in {text:?}"))?;
            }
            return Ok(FabricSpec::Torus3D { dims: d });
        }
        Err(format!("unknown fabric label {text:?}"))
    }

    /// Host capacity of the shape (`None` = unbounded single switch).
    pub fn capacity(&self) -> Option<usize> {
        match self {
            FabricSpec::SingleSwitch => None,
            FabricSpec::FatTree { k } => Some(k * k * k / 4),
            FabricSpec::Torus3D { dims } => Some(dims[0] * dims[1] * dims[2]),
        }
    }

    /// Check the shape itself and that it can seat `p` hosts.
    pub fn validate(&self, p: usize) -> Result<(), String> {
        match self {
            FabricSpec::SingleSwitch => Ok(()),
            FabricSpec::FatTree { k } => {
                if *k < 2 || k % 2 != 0 {
                    return Err(format!("fat-tree arity k={k} must be even and >= 2"));
                }
                let cap = k * k * k / 4;
                if p > cap {
                    return Err(format!("fat-tree k={k} seats {cap} hosts, p={p} asked"));
                }
                Ok(())
            }
            FabricSpec::Torus3D { dims } => {
                if dims.contains(&0) {
                    return Err(format!("torus dims {dims:?} must all be >= 1"));
                }
                let cap = dims[0] * dims[1] * dims[2];
                if p > cap {
                    return Err(format!("torus {dims:?} seats {cap} hosts, p={p} asked"));
                }
                Ok(())
            }
        }
    }

    /// Expand to a concrete [`Topology`] for `p` ranks. Panics on an
    /// invalid spec — callers validate at the cluster-spec boundary.
    pub fn build(&self, p: usize) -> Topology {
        if let Err(e) = self.validate(p) {
            panic!("invalid fabric spec: {e}");
        }
        match *self {
            FabricSpec::SingleSwitch => Topology {
                spec: *self,
                switch_count: 1,
                home: vec![0; p],
                trunks: Vec::new(),
                neighbors: vec![Vec::new()],
            },
            FabricSpec::FatTree { k } => build_fat_tree(*self, k, p),
            FabricSpec::Torus3D { dims } => build_torus(*self, dims, p),
        }
    }
}

impl fmt::Display for FabricSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A concrete fabric: switches, host homes, and trunk links. All ids
/// follow the layout documented on [`FabricSpec`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Topology {
    /// The spec this topology was built from.
    pub spec: FabricSpec,
    /// Number of switches in the fabric.
    pub switch_count: usize,
    /// `home[rank]` = the edge switch the rank's primary NIC attaches to.
    pub home: Vec<usize>,
    /// Canonical trunk list, each `(a, b)` with `a < b`, sorted.
    pub trunks: Vec<(usize, usize)>,
    /// Sorted adjacency per switch (derived from `trunks`).
    neighbors: Vec<Vec<usize>>,
}

impl Topology {
    /// Sorted trunk neighbors of switch `s`.
    pub fn neighbors(&self, s: usize) -> &[usize] {
        &self.neighbors[s]
    }

    /// Whether `(a, b)` (either order) is a trunk of this topology.
    pub fn has_trunk(&self, a: usize, b: usize) -> bool {
        let key = (a.min(b), a.max(b));
        self.trunks.binary_search(&key).is_ok()
    }

    /// Edge switch seating a rank's *fallback* NIC: the next host-bearing
    /// switch after its home, so a single switch failure never strands
    /// both of a rank's attachment points. Deterministic; if a fault
    /// plan kills this switch too the rank shows up in the
    /// [`PartitionReport`](crate::routing::PartitionReport) instead.
    pub fn fallback_home(&self, rank: usize) -> usize {
        self.fallback_home_avoiding(rank, &BTreeSet::new())
    }

    /// Like [`fallback_home`](Topology::fallback_home), but skipping
    /// `avoid` — the switches a fault plan is already known to kill.
    /// Dual-homing a rank on a doomed switch would strand both of its
    /// attachment points at once, so the wiring layer steers fallback
    /// NICs to the next host-bearing switch that actually survives.
    /// Falls back to the plain next-after-home choice when every
    /// alternative is avoided (the partition is then real and reported).
    pub fn fallback_home_avoiding(&self, rank: usize, avoid: &BTreeSet<usize>) -> usize {
        let hosting: Vec<usize> = {
            let mut hs: Vec<usize> = self
                .home
                .iter()
                .copied()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            if hs.len() < 2 {
                // Degenerate fabrics (one edge switch): fall back to any
                // other switch, or the home itself when there is only one.
                hs = (0..self.switch_count.max(1)).collect();
            }
            hs
        };
        let home = self.home[rank];
        let at = hosting.iter().position(|&s| s == home).unwrap_or(0);
        for step in 1..=hosting.len() {
            let s = hosting[(at + step) % hosting.len()];
            if s != home && !avoid.contains(&s) {
                return s;
            }
        }
        hosting[(at + 1) % hosting.len()]
    }

    /// For a torus, the (dimension, positive-direction) of the trunk
    /// `from → to`; `None` for non-torus shapes or non-adjacent pairs.
    /// Used by dimension-order tie-breaking in routing.
    pub fn torus_edge(&self, from: usize, to: usize) -> Option<(usize, bool)> {
        let FabricSpec::Torus3D { dims } = self.spec else {
            return None;
        };
        let a = torus_coords(from, dims);
        let b = torus_coords(to, dims);
        for dim in 0..3 {
            let (x, y) = (a[dim], b[dim]);
            if x == y {
                continue;
            }
            let others_equal = (0..3).filter(|&d| d != dim).all(|d| a[d] == b[d]);
            if !others_equal {
                return None;
            }
            let n = dims[dim];
            let plus = (x + 1) % n == y;
            let minus = (y + 1) % n == x;
            return match (plus, minus) {
                // On a 2-ring both directions name the same link; call
                // it positive for a stable sort key.
                (true, true) => Some((dim, true)),
                (true, false) => Some((dim, true)),
                (false, true) => Some((dim, false)),
                (false, false) => None,
            };
        }
        None
    }
}

fn build_fat_tree(spec: FabricSpec, k: usize, p: usize) -> Topology {
    let half = k / 2;
    let edges = k * half; // k pods x k/2 edge switches
    let aggs = k * half;
    let cores = half * half;
    let switch_count = edges + aggs + cores;
    let mut trunks = BTreeSet::new();
    for pod in 0..k {
        for e in 0..half {
            let edge = pod * half + e;
            for a in 0..half {
                let agg = edges + pod * half + a;
                trunks.insert((edge.min(agg), edge.max(agg)));
            }
        }
        for a in 0..half {
            let agg = edges + pod * half + a;
            for c in 0..half {
                let core = edges + aggs + a * half + c;
                trunks.insert((agg.min(core), agg.max(core)));
            }
        }
    }
    let home = (0..p).map(|r| r / half).collect();
    finish(spec, switch_count, home, trunks)
}

fn torus_coords(id: usize, dims: [usize; 3]) -> [usize; 3] {
    let x = id % dims[0];
    let y = (id / dims[0]) % dims[1];
    let z = id / (dims[0] * dims[1]);
    [x, y, z]
}

fn torus_id(c: [usize; 3], dims: [usize; 3]) -> usize {
    c[0] + dims[0] * (c[1] + dims[1] * c[2])
}

fn build_torus(spec: FabricSpec, dims: [usize; 3], p: usize) -> Topology {
    let switch_count = dims[0] * dims[1] * dims[2];
    let mut trunks = BTreeSet::new();
    for id in 0..switch_count {
        let c = torus_coords(id, dims);
        for dim in 0..3 {
            if dims[dim] < 2 {
                continue;
            }
            let mut n = c;
            n[dim] = (c[dim] + 1) % dims[dim];
            let other = torus_id(n, dims);
            if other != id {
                trunks.insert((id.min(other), id.max(other)));
            }
        }
    }
    let home = (0..p).collect();
    finish(spec, switch_count, home, trunks)
}

fn finish(
    spec: FabricSpec,
    switch_count: usize,
    home: Vec<usize>,
    trunks: BTreeSet<(usize, usize)>,
) -> Topology {
    let trunks: Vec<(usize, usize)> = trunks.into_iter().collect();
    let mut neighbors = vec![Vec::new(); switch_count];
    for &(a, b) in &trunks {
        neighbors[a].push(b);
        neighbors[b].push(a);
    }
    for n in &mut neighbors {
        n.sort_unstable();
    }
    Topology {
        spec,
        switch_count,
        home,
        trunks,
        neighbors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for spec in [
            FabricSpec::SingleSwitch,
            FabricSpec::FatTree { k: 4 },
            FabricSpec::FatTree { k: 8 },
            FabricSpec::Torus3D { dims: [2, 2, 2] },
            FabricSpec::Torus3D { dims: [4, 4, 8] },
        ] {
            assert_eq!(FabricSpec::parse(&spec.label()), Ok(spec));
        }
        assert!(FabricSpec::parse("mesh:9").is_err());
        assert!(FabricSpec::parse("torus:2x2").is_err());
    }

    #[test]
    fn fat_tree_shape() {
        // k=4: 8 edges, 8 aggs, 4 cores; 16 hosts; 32 trunks.
        let t = FabricSpec::FatTree { k: 4 }.build(16);
        assert_eq!(t.switch_count, 20);
        assert_eq!(t.trunks.len(), 32);
        assert_eq!(t.home[0], 0);
        assert_eq!(t.home[2], 1);
        assert_eq!(t.home[15], 7);
        // Edge 0 (pod 0) links to aggs 8, 9 and nothing else.
        assert_eq!(t.neighbors(0), &[8, 9]);
        // Agg 8 links to edges 0, 1 and cores 16, 17.
        assert_eq!(t.neighbors(8), &[0, 1, 16, 17]);
        // Core 16 links to agg 0 of every pod: 8, 10, 12, 14.
        assert_eq!(t.neighbors(16), &[8, 10, 12, 14]);
    }

    #[test]
    fn fat_tree_k8_half_filled() {
        let t = FabricSpec::FatTree { k: 8 }.build(64);
        assert_eq!(t.switch_count, 32 + 32 + 16);
        assert_eq!(t.home[63], 15, "64 ranks fill edges 0..=15 at 4 per edge");
        assert!(FabricSpec::FatTree { k: 8 }.validate(128).is_ok());
        assert!(FabricSpec::FatTree { k: 8 }.validate(129).is_err());
        assert!(FabricSpec::FatTree { k: 3 }.validate(1).is_err());
    }

    #[test]
    fn torus_shape() {
        let t = FabricSpec::Torus3D { dims: [2, 2, 2] }.build(8);
        assert_eq!(t.switch_count, 8);
        // 2-rings collapse to single links: 3 links per node x 8 / 2.
        assert_eq!(t.trunks.len(), 12);
        assert_eq!(t.neighbors(0), &[1, 2, 4]);
        assert_eq!(t.torus_edge(0, 1), Some((0, true)));
        assert_eq!(t.torus_edge(0, 2), Some((1, true)));
        assert_eq!(t.torus_edge(0, 4), Some((2, true)));
        assert_eq!(t.torus_edge(0, 7), None);

        let t4 = FabricSpec::Torus3D { dims: [4, 1, 1] }.build(4);
        assert_eq!(t4.trunks.len(), 4, "a 4-ring in x only");
        assert_eq!(t4.torus_edge(3, 0), Some((0, true)), "wraparound is +1");
        assert_eq!(t4.torus_edge(0, 3), Some((0, false)));
    }

    #[test]
    fn degenerate_dims_have_no_links() {
        let t = FabricSpec::Torus3D { dims: [1, 1, 1] }.build(1);
        assert_eq!(t.trunks.len(), 0);
        assert_eq!(t.switch_count, 1);
    }

    #[test]
    fn fallback_home_differs_from_home() {
        let t = FabricSpec::FatTree { k: 4 }.build(16);
        for r in 0..16 {
            assert_ne!(t.fallback_home(r), t.home[r], "rank {r}");
        }
        let torus = FabricSpec::Torus3D { dims: [2, 2, 1] }.build(4);
        for r in 0..4 {
            assert_ne!(torus.fallback_home(r), torus.home[r], "rank {r}");
        }
    }

    #[test]
    fn fallback_home_avoids_doomed_switches() {
        let torus = FabricSpec::Torus3D { dims: [2, 2, 2] }.build(8);
        // Unconstrained, rank 0 dual-homes on the next switch (1).
        assert_eq!(torus.fallback_home(0), 1);
        // If switch 1 is doomed, the choice skips to 2; the avoiding
        // variant with an empty set matches the plain one exactly.
        let doomed: BTreeSet<usize> = [1].into_iter().collect();
        assert_eq!(torus.fallback_home_avoiding(0, &doomed), 2);
        for r in 0..8 {
            assert_eq!(
                torus.fallback_home_avoiding(r, &BTreeSet::new()),
                torus.fallback_home(r),
                "rank {r}"
            );
            assert_ne!(torus.fallback_home_avoiding(r, &doomed), 1, "rank {r}");
        }
        // Every alternative doomed: degrade to the plain choice rather
        // than panic — the partition is then real and gets reported.
        let all: BTreeSet<usize> = (0..8).collect();
        assert_eq!(
            torus.fallback_home_avoiding(0, &all),
            torus.fallback_home(0)
        );
    }

    #[test]
    fn has_trunk_both_orders() {
        let t = FabricSpec::Torus3D { dims: [2, 2, 2] }.build(8);
        assert!(t.has_trunk(0, 1));
        assert!(t.has_trunk(1, 0));
        assert!(!t.has_trunk(0, 7));
    }
}
