//! Structured hang diagnosis for cluster runs.
//!
//! A guarded run ends in one of three ways: completion, a simulation
//! [`Watchdog`](acc_sim::Watchdog) abort (event budget, same-timestamp
//! livelock, or the whole-run deadline of the
//! [`DeadlineHierarchy`](crate::deadline::DeadlineHierarchy)), or a
//! *deadlock* — the event queue drains while drivers are still waiting
//! on peers that will never send. All three non-completions produce a
//! [`HangReport`] naming the stuck phase and rank instead of a panic or
//! an infinite loop.

use std::fmt;

use acc_net::PartitionReport;
use acc_sim::{LivenessReport, SimDuration, SimTime};

use crate::cluster::Technology;
use crate::deadline::DeadlineHierarchy;
use crate::drivers::DriverProgress;

/// Why the run failed to complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HangCause {
    /// A simulation watchdog bound tripped (events kept flowing without
    /// the run converging).
    Watchdog(acc_sim::HangKind),
    /// The event queue drained with drivers still undone: every rank is
    /// waiting on a message nobody will ever send.
    Deadlock,
}

impl fmt::Display for HangCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HangCause::Watchdog(kind) => write!(f, "{kind}"),
            HangCause::Deadlock => f.write_str("deadlock (event queue drained, drivers undone)"),
        }
    }
}

/// Structured description of a hung cluster run.
#[derive(Clone, Debug)]
pub struct HangReport {
    /// Why the run was declared hung.
    pub cause: HangCause,
    /// The cluster technology.
    pub technology: Technology,
    /// Committed simulated time at abort.
    pub now: SimTime,
    /// Every rank's progress snapshot.
    pub ranks: Vec<DriverProgress>,
    /// The rank most overdue relative to its phase budget — the named
    /// culprit. `None` only if every rank finished (which cannot happen
    /// for a genuine hang).
    pub culprit: Option<DriverProgress>,
    /// How far past its phase budget the culprit is.
    pub overdue: SimDuration,
    /// The simulation-level report, present when the cause was a
    /// watchdog abort (wait states, queue head, trace tail).
    pub sim: Option<LivenessReport>,
    /// The fabric partition to blame, when the cluster ran on a
    /// multi-switch fabric whose routing timeline disconnected ranks:
    /// the unreachable rank set plus the cut trunks and dead switches
    /// that caused it. `None` on single-switch runs and on hangs with
    /// no partition in the timeline.
    pub partition: Option<PartitionReport>,
}

impl HangReport {
    /// Assemble a report: pick the culprit as the unfinished rank most
    /// overdue relative to its phase budget (ties broken by lowest
    /// rank, deterministically).
    pub fn diagnose(
        cause: HangCause,
        technology: Technology,
        now: SimTime,
        ranks: Vec<DriverProgress>,
        hierarchy: &DeadlineHierarchy,
        sim: Option<LivenessReport>,
    ) -> HangReport {
        let mut culprit: Option<DriverProgress> = None;
        let mut overdue = SimDuration::ZERO;
        let mut best: Option<i128> = None;
        for r in &ranks {
            if r.done {
                continue;
            }
            let waited = now.saturating_since(r.entered);
            let budget = hierarchy.phase_budget(r.phase);
            let over = waited.as_ps() as i128 - budget.as_ps() as i128;
            if best.is_none_or(|b| over > b) {
                best = Some(over);
                overdue = SimDuration::from_ps(over.max(0) as u64);
                culprit = Some(r.clone());
            }
        }
        HangReport {
            cause,
            technology,
            now,
            ranks,
            culprit,
            overdue,
            sim,
            partition: None,
        }
    }

    /// `"<phase> on rank <r>"` — the attribution line, used by tests
    /// and artifact headers.
    pub fn attribution(&self) -> String {
        match &self.culprit {
            Some(c) => format!("{} on rank {}", c.phase, c.rank),
            None => "unattributed".to_owned(),
        }
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hang: {} [{}] at t={}",
            self.cause,
            self.technology.label(),
            self.now
        )?;
        if let Some(c) = &self.culprit {
            writeln!(
                f,
                "  stuck in {} on rank {} (entered {}, {} over budget{})",
                c.phase,
                c.rank,
                c.entered,
                self.overdue,
                if c.paused {
                    ", parked for recovery"
                } else {
                    ""
                }
            )?;
        }
        if let Some(p) = &self.partition {
            writeln!(f, "  fabric partition: {p}")?;
        }
        writeln!(f, "  ranks:")?;
        for r in &self.ranks {
            writeln!(
                f,
                "    rank {}: {}{}{}",
                r.rank,
                r.phase,
                if r.done { " (done)" } else { "" },
                if r.paused { " (paused)" } else { "" }
            )?;
        }
        if let Some(sim) = &self.sim {
            write!(f, "{sim}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use crate::runner::Workload;

    fn hierarchy() -> DeadlineHierarchy {
        DeadlineHierarchy::for_run(
            &ClusterSpec::new(4, Technology::InicIdeal),
            &Workload::Sort {
                total_keys: 1 << 10,
            },
        )
    }

    fn rank(rank: usize, phase: &'static str, entered_ms: u64, done: bool) -> DriverProgress {
        DriverProgress {
            rank,
            phase,
            entered: SimTime::ZERO + SimDuration::from_millis(entered_ms),
            paused: false,
            done,
        }
    }

    #[test]
    fn culprit_is_the_most_overdue_unfinished_rank() {
        // Far enough out that even the slack-multiplied budgets are
        // clearly blown.
        let now = SimTime::ZERO + SimDuration::from_secs(3600);
        let report = HangReport::diagnose(
            HangCause::Deadlock,
            Technology::InicIdeal,
            now,
            vec![
                rank(0, "count", 29_000, true),
                rank(1, "exchange", 10, false),
                rank(2, "exchange", 500, false),
            ],
            &hierarchy(),
            None,
        );
        let culprit = report.culprit.as_ref().expect("culprit");
        assert_eq!(culprit.rank, 1);
        assert_eq!(culprit.phase, "exchange");
        assert_eq!(report.attribution(), "exchange on rank 1");
        assert!(report.overdue > SimDuration::ZERO);
        let text = report.to_string();
        assert!(text.contains("deadlock"));
        assert!(
            text.contains("exchange on rank 1") || text.contains("stuck in exchange on rank 1")
        );
    }

    #[test]
    fn ties_attribute_to_the_lowest_rank() {
        let now = SimTime::ZERO + SimDuration::from_secs(5);
        let report = HangReport::diagnose(
            HangCause::Deadlock,
            Technology::GigabitTcp,
            now,
            vec![
                rank(0, "exchange", 100, false),
                rank(1, "exchange", 100, false),
            ],
            &hierarchy(),
            None,
        );
        assert_eq!(report.culprit.as_ref().expect("culprit").rank, 0);
    }

    #[test]
    fn all_done_means_no_culprit() {
        let report = HangReport::diagnose(
            HangCause::Watchdog(acc_sim::HangKind::EventBudgetExhausted),
            Technology::InicPrototype,
            SimTime::ZERO,
            vec![rank(0, "count", 0, true)],
            &hierarchy(),
            None,
        );
        assert!(report.culprit.is_none());
        assert_eq!(report.attribution(), "unattributed");
    }
}
