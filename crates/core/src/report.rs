//! Report formatting shared by the figure regenerators.
//!
//! Each paper figure is a set of named series over a processor-count
//! axis. [`FigureReport`] collects them and prints both a human-readable
//! table and a gnuplot/CSV block, so `cargo run -p acc-bench --bin
//! fig4a` (etc.) reproduces the figure's data exactly.

use std::fmt::Write as _;

/// One named data series (e.g. "INIC Speedup 512x512").
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// `(x, y)` points; `x` is usually the processor count.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }
}

/// A figure: axis labels plus its series.
#[derive(Clone, Debug)]
pub struct FigureReport {
    /// Figure id, e.g. "Figure 4(a)".
    pub id: String,
    /// Caption summarising what is plotted.
    pub caption: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl FigureReport {
    /// New empty figure.
    pub fn new(
        id: impl Into<String>,
        caption: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> FigureReport {
        FigureReport {
            id: id.into(),
            caption: caption.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Add a series.
    pub fn add(&mut self, series: Series) {
        self.series.push(series);
    }

    /// All x values appearing in any series, sorted and deduplicated.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        xs
    }

    /// Render as an aligned text table (one row per x, one column per
    /// series).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.caption);
        let _ = writeln!(out, "# x: {}   y: {}", self.x_label, self.y_label);
        let mut header = format!("{:>8}", self.x_label);
        for s in &self.series {
            let _ = write!(header, "  {:>28}", s.name);
        }
        let _ = writeln!(out, "{header}");
        for x in self.x_values() {
            // Processor counts print as integers; fractional axes (e.g.
            // loss percentages) keep their decimals.
            let mut row = if x.fract() == 0.0 {
                format!("{x:>8.0}")
            } else {
                format!("{x:>8.2}")
            };
            for s in &self.series {
                match s.at(x) {
                    Some(y) => {
                        let _ = write!(row, "  {y:>28.3}");
                    }
                    None => {
                        let _ = write!(row, "  {:>28}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Render as CSV (header row then one line per x).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = self.x_label.clone();
        for s in &self.series {
            let _ = write!(header, ",{}", s.name);
        }
        let _ = writeln!(out, "{header}");
        for x in self.x_values() {
            let mut row = format!("{x}");
            for s in &self.series {
                match s.at(x) {
                    Some(y) => {
                        let _ = write!(row, ",{y}");
                    }
                    None => row.push(','),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Print both renderings to stdout (what the `fig*` binaries do).
    pub fn print(&self) {
        println!("{}", self.to_table());
        println!("--- CSV ---");
        println!("{}", self.to_csv());
    }
}

/// The processor counts the paper's figures sweep.
pub const PAPER_PROC_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// Fault-handling telemetry shared by every run-result struct. All
/// fields are zero/`None` on a fault-free run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultDiagnostics {
    /// Total retransmitted segments/packets across the cluster (TCP
    /// RTO + fast retransmits, or INIC recovery resends).
    pub retransmits: u64,
    /// Nodes that finished over the degraded commodity fallback path
    /// after a card failure. Under rank-local recovery this is exactly
    /// the number of distinct dead cards; under full-restart it is P.
    pub degraded_nodes: u64,
    /// Nodes whose host CPU deferred at least one event inside a
    /// [`NodeStall`](acc_chaos::FaultEvent::NodeStall) window.
    pub stalled_nodes: u64,
    /// Card reconfiguration windows that completed and resumed the
    /// datapath without data loss (summed across all cards).
    pub reconfig_windows_survived: u64,
    /// The coordinator-agreed checkpoint phase (completed round, for
    /// collectives) the run resumed from after the last card failure.
    /// `None` when no coordinated resume happened — a clean run, or a
    /// full restart, which starts over without any coordinator;
    /// `Some(0)` means the coordinator agreed on a from-scratch redo.
    pub resumed_from_phase: Option<u32>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureReport {
        let mut fig = FigureReport::new("Fig T", "test", "P", "speedup");
        let mut a = Series::new("a");
        a.push(1.0, 1.0);
        a.push(2.0, 1.9);
        let mut b = Series::new("b");
        b.push(2.0, 1.5);
        b.push(4.0, 2.5);
        fig.add(a);
        fig.add(b);
        fig
    }

    #[test]
    fn x_values_union_sorted() {
        assert_eq!(sample().x_values(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn series_lookup() {
        let fig = sample();
        assert_eq!(fig.series[0].at(2.0), Some(1.9));
        assert_eq!(fig.series[0].at(4.0), None);
    }

    #[test]
    fn table_contains_all_series_and_gaps() {
        let t = sample().to_table();
        assert!(t.contains("Fig T"));
        assert!(t.contains('a') && t.contains('b'));
        assert!(t.contains('-'), "missing points render as dashes");
    }

    #[test]
    fn csv_round_numbers() {
        let c = sample().to_csv();
        let mut lines = c.lines();
        assert_eq!(lines.next(), Some("P,a,b"));
        assert_eq!(lines.next(), Some("1,1,"));
        assert_eq!(lines.next(), Some("2,1.9,1.5"));
        assert_eq!(lines.next(), Some("4,,2.5"));
    }
}
