//! Cluster construction and end-to-end scenario runners.
//!
//! [`run_fft`] and [`run_sort`] build a P-node cluster of the requested
//! [`Technology`], run the application to completion, verify the result
//! against a serial oracle, and return a timing decomposition. These two
//! functions are what the figure regenerators, the integration tests and
//! the examples all call.

use acc_algos::fft::{fft_2d, Matrix};
use acc_algos::sort::is_sorted;
use acc_algos::sort::splitters_from_sample;
use acc_algos::transpose::{join_row_blocks, split_row_blocks};
use acc_algos::workload::{distributed_uniform_keys, gaussian_keys, random_matrix};
use acc_chaos::{FaultPlan, LinkId};
use acc_coll::{Algorithm, CollectiveOp, OffloadError, OffloadPlan, PathClass, Schedule};
use acc_fpga::{
    CardPorts, FpgaDevice, InicCard, InicKill, InicMode, InicReconfigure, CREDIT_WINDOW,
};
use acc_host::{HostKernels, InterruptCosts, ModerationPolicy, StallSchedule};
use std::collections::BTreeMap;

use acc_net::port::EgressPort;
use acc_net::routing::Attachment as FabricAttachment;
use acc_net::{
    compute_schedule, EthernetKind, FabricSchedule, FabricSpec, LinkParams, MacAddr,
    PartitionReport, RouteUpdate, Switch, SwitchKill, SwitchParams, TrunkOutage,
};
use acc_proto::{HostPathCosts, TcpHostNic, TcpParams};
use acc_sim::{ComponentId, HangKind, SimDuration, SimTime, Simulation};

use crate::audit::{self, AuditConfig, Auditor};
use crate::deadline::DeadlineHierarchy;
use crate::drivers::coll::CollDriver;
use crate::drivers::fft::FftDriver;
use crate::drivers::sort::{SortDriver, SortVariant};
use crate::drivers::{
    Attachment, CardFailed, DriverProgress, FaultCtl, RecoveryCoordinator, RecoveryPolicy,
};
use crate::liveness::{HangCause, HangReport};
use crate::report::FaultDiagnostics;
use crate::runner::Workload;

/// The four network technologies the paper evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Technology {
    /// 100 Mb/s Ethernet + TCP (Fig. 8(a)'s lowest curves).
    FastEthernet,
    /// 1 Gb/s Ethernet + TCP (the commodity baseline everywhere).
    GigabitTcp,
    /// The Section-4 next-generation INIC (dual-ported card, dense
    /// FPGA).
    InicIdeal,
    /// The ACEII prototype INIC (shared 132 MB/s card bus, 4085XLA).
    InicPrototype,
    /// An ideal INIC used **only** as a protocol processor (Section 2's
    /// second mode): no per-packet interrupts and the lightweight
    /// protocol, but all data manipulation stays on the host. The mode
    /// ablation for the paper's claim that reconfigurable computing and
    /// the NIC "enable each other to succeed".
    InicProtocol,
}

impl Technology {
    /// All five, in the paper's presentation order (the protocol-only
    /// mode last — it is our Section 2 mode ablation, not a paper
    /// configuration).
    pub const ALL: [Technology; 5] = [
        Technology::FastEthernet,
        Technology::GigabitTcp,
        Technology::InicIdeal,
        Technology::InicPrototype,
        Technology::InicProtocol,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Technology::FastEthernet => "fast-ethernet",
            Technology::GigabitTcp => "gigabit-tcp",
            Technology::InicIdeal => "inic-ideal",
            Technology::InicPrototype => "inic-prototype",
            Technology::InicProtocol => "inic-protocol-only",
        }
    }

    /// Whether this technology uses an INIC card.
    pub fn is_inic(self) -> bool {
        matches!(
            self,
            Technology::InicIdeal | Technology::InicPrototype | Technology::InicProtocol
        )
    }

    fn link_kind(self) -> EthernetKind {
        match self {
            Technology::FastEthernet => EthernetKind::Fast,
            _ => EthernetKind::Gigabit,
        }
    }
}

/// A cluster scenario.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Node count.
    pub p: usize,
    /// Network technology.
    pub technology: Technology,
    /// Workload seed (recorded with every experiment).
    pub seed: u64,
    /// Verify results against serial oracles (disable only for very
    /// large figure runs where the oracle itself is the bottleneck).
    pub verify: bool,
    /// Deterministic fault schedule. `None` (the default) wires the
    /// pristine cluster with zero fault-injection overhead — the golden
    /// figures run exactly as before. `Some` compiles the plan into
    /// per-link impairments, enables the INIC recovery protocol, and
    /// (if the plan kills cards) wires a commodity fallback NIC per
    /// node and schedules the failures.
    pub fault_plan: Option<FaultPlan>,
    /// Switch fabric shape. [`FabricSpec::SingleSwitch`] (the default)
    /// wires the paper's single store-and-forward switch exactly as
    /// before — byte-identical to every existing golden. The
    /// multi-switch shapes instantiate one switch per topology node,
    /// joined by trunk links, with deterministic minimal routing tables
    /// (D-mod-k on the fat-tree, dimension-order on the torus; see
    /// `acc_net::fabric` and `acc_net::routing`).
    pub fabric: FabricSpec,
    /// How the cluster recovers from permanent card failures. Ignored
    /// on fault-free runs and for [`Technology::InicProtocol`] (a pure
    /// protocol processor has no card datapath worth keeping, so it
    /// always falls back to a full restart).
    pub recovery: RecoveryPolicy,
    /// Suppress the engine's stderr diagnostics (trace-tail dumps on
    /// panics and watchdog aborts). Set by harnesses that run many
    /// *expected* failures — the fault-plan minimizer probes dozens of
    /// candidate plans, most of which hang or fail on purpose.
    pub quiet: bool,
}

impl ClusterSpec {
    /// A verifying spec.
    pub fn new(p: usize, technology: Technology) -> ClusterSpec {
        ClusterSpec {
            p,
            technology,
            seed: 0xACC,
            verify: true,
            fault_plan: None,
            fabric: FabricSpec::SingleSwitch,
            recovery: RecoveryPolicy::default(),
            quiet: false,
        }
    }

    /// Attach a fault plan (builder style).
    ///
    /// # Panics
    /// Panics if the plan is inconsistent with this cluster — a fault
    /// references a node ≥ P, a window has zero duration, or two
    /// outages on the same link overlap.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> ClusterSpec {
        if let Err(e) = plan.validate(self.p as u32) {
            panic!("invalid fault plan: {e}");
        }
        self.fault_plan = Some(plan);
        self
    }

    /// Choose the switch fabric (builder style).
    ///
    /// # Panics
    /// Panics if the shape is invalid or cannot seat `p` hosts (a
    /// fat-tree of arity `k` seats `k³/4`, a torus one host per
    /// switch). Fault plans carrying fabric faults are re-checked
    /// against the concrete topology when the cluster is wired.
    #[must_use]
    pub fn with_fabric(mut self, fabric: FabricSpec) -> ClusterSpec {
        if let Err(e) = fabric.validate(self.p) {
            panic!("invalid fabric: {e}");
        }
        self.fabric = fabric;
        self
    }

    /// Choose the card-failure recovery policy (builder style).
    #[must_use]
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> ClusterSpec {
        self.recovery = policy;
        self
    }

    /// Suppress stderr diagnostics for expected-failure harnesses
    /// (builder style).
    #[must_use]
    pub fn with_quiet(mut self, quiet: bool) -> ClusterSpec {
        self.quiet = quiet;
        self
    }
}

/// Result of one FFT run.
#[derive(Clone, Debug)]
pub struct FftRunResult {
    /// Wall time from computation start (post-configuration) to the last
    /// node finishing.
    pub total: SimDuration,
    /// Maximum per-node row-FFT compute time.
    pub compute: SimDuration,
    /// Maximum per-node transpose time (both transposes).
    pub transpose: SimDuration,
    /// Maximum per-node host compute buried in the transposes (local
    /// transpose + final permutation; zero on INIC paths).
    pub transpose_compute: SimDuration,
    /// Maximum per-node pure communication share of the transposes.
    pub transpose_comm: SimDuration,
    /// Whether the distributed result matched `fft_2d` (always true
    /// unless `verify` was off).
    pub verified: bool,
    /// Frames dropped in the switch. The INIC protocol's scheduling
    /// guarantee ("no packet loss as the total amount of data put into
    /// the network never exceeds the network buffers") is asserted: INIC
    /// runs with drops panic.
    pub switch_drops: u64,
    /// Maximum per-node host CPU time spent on protocol processing
    /// (zero on INIC technologies — the card does it).
    pub protocol_cpu: SimDuration,
    /// Total interrupts taken across the cluster on the network path.
    pub interrupts: u64,
    /// Fault-handling telemetry (all zero/`None` on a fault-free run).
    pub faults: FaultDiagnostics,
}

/// Result of one sort run.
#[derive(Clone, Debug)]
pub struct SortRunResult {
    /// Wall time from start (post-configuration) to the last node done.
    pub total: SimDuration,
    /// Max per-node host phase-1 bucket time.
    pub bucket1: SimDuration,
    /// Max per-node exchange wall time.
    pub comm: SimDuration,
    /// Max per-node host phase-2 bucket time.
    pub bucket2: SimDuration,
    /// Max per-node count-sort time.
    pub count: SimDuration,
    /// Whether the distributed result matched a serial sort.
    pub verified: bool,
    /// Frames dropped in the switch (always 0 on INIC technologies).
    pub switch_drops: u64,
    /// Maximum per-node host CPU time spent on protocol processing.
    pub protocol_cpu: SimDuration,
    /// Total interrupts taken across the cluster on the network path.
    pub interrupts: u64,
    /// Fault-handling telemetry (all zero/`None` on a fault-free run).
    pub faults: FaultDiagnostics,
}

/// Everything wired up for one run.
struct Wiring {
    sim: Simulation,
    drivers: Vec<ComponentId>,
    nics: Vec<ComponentId>,
    switches: Vec<ComponentId>,
    technology: Technology,
    /// The precomputed routing timeline; present only on multi-switch
    /// fabrics. Hangs consult it to attribute the stall to a partition.
    fabric: Option<FabricSchedule>,
    /// What the Auditor watches; present only on faulted runs. The
    /// end-of-run [`audit::final_check`] reads it after `sim.run()`.
    audit: Option<AuditConfig>,
}

/// Translate one switch's next-hop table (dst MAC → neighbour switch
/// id, as `acc_net::routing` computes it) into the concrete egress
/// ports this wiring attached.
fn to_port_routes(
    table: &BTreeMap<MacAddr, usize>,
    trunk_ports: &BTreeMap<usize, usize>,
) -> BTreeMap<MacAddr, usize> {
    table
        .iter()
        .map(|(mac, nb)| (*mac, trunk_ports[nb]))
        .collect()
}

/// Build the sim, switch, and per-node network attachment for `spec`;
/// `make_driver` turns each rank's attachment (plus its fault-handling
/// configuration) into its driver.
fn wire(
    spec: &ClusterSpec,
    make_driver: impl Fn(usize, Attachment, FaultCtl) -> DriverBox,
) -> Wiring {
    let mut sim = Simulation::new(spec.seed);
    if spec.quiet {
        sim.set_quiet(true);
    }
    let link = LinkParams::for_kind(spec.technology.link_kind());
    let plan = spec.fault_plan.as_ref();
    let topo = spec.fabric.build(spec.p);
    let fabric_mode = spec.fabric != FabricSpec::SingleSwitch;
    if let Some(pl) = plan {
        if fabric_mode || pl.has_fabric_faults() {
            // Topology-aware re-validation: fabric faults must name real
            // trunks and switches of this concrete shape, and can never
            // apply to the single switch (no trunks to cut).
            if let Err(e) = pl.validate_for_fabric(spec.p as u32, SimTime::MAX, &spec.fabric) {
                panic!("invalid fault plan for fabric {}: {e}", spec.fabric);
            }
        }
    }
    let macs: Vec<MacAddr> = (0..spec.p).map(|i| MacAddr::for_node(i, 0)).collect();
    let driver_ids: Vec<ComponentId> = (0..spec.p).map(|_| sim.reserve_id()).collect();
    let nic_ids: Vec<ComponentId> = (0..spec.p).map(|_| sim.reserve_id()).collect();
    let switch_ids: Vec<ComponentId> = (0..topo.switch_count).map(|_| sim.reserve_id()).collect();
    let mut switches: Vec<Switch> = (0..topo.switch_count)
        .map(|i| {
            // The single-switch label stays "switch" so every existing
            // stats scope and golden byte sequence is untouched.
            let label = if fabric_mode {
                format!("fsw{i}")
            } else {
                "switch".to_owned()
            };
            Switch::new(label, SwitchParams::default())
        })
        .collect();
    // A dead edge switch takes every rank homed on it off the fabric at
    // one instant — indistinguishable, from the cluster's point of
    // view, from all those cards dying at once. Treat the victims as
    // card-failure casualties so the same recovery machinery (fallback
    // NIC, round checkpoints, mixed-technology replan) applies; their
    // fallback NICs are dual-homed on a *different* edge switch
    // ([`Topology::fallback_home`]), so the failure never strands both
    // attachment points.
    let switch_kills: Vec<(usize, SimTime)> = plan
        .map(|pl| {
            pl.switch_failures()
                .iter()
                .map(|&(s, at)| (s as usize, at))
                .collect()
        })
        .unwrap_or_default();
    let mut victim_kills: Vec<(u32, SimTime)> = Vec::new();
    for &(s, at) in &switch_kills {
        for rank in 0..spec.p {
            if topo.home[rank] == s {
                victim_kills.push((rank as u32, at));
            }
        }
    }
    // Switches the plan will kill make useless fallback homes: a rank
    // dual-homed there would lose both attachment points at once.
    let doomed: std::collections::BTreeSet<usize> = switch_kills.iter().map(|&(s, _)| s).collect();
    let fb_home_of = |rank: usize| topo.fallback_home_avoiding(rank, &doomed);
    // When the plan can kill a card (or an edge switch under an INIC
    // technology), every node gets a commodity fallback NIC on a second
    // switch port: whichever recovery policy applies, every rank needs
    // the path — under full restart the whole collective degrades,
    // under rank-local recovery healthy ranks use it for the
    // mixed-technology side streams. The fallback links carry no
    // impairments — the scenario under test is the failure itself.
    let with_fallback = spec.technology.is_inic()
        && (plan.is_some_and(FaultPlan::has_card_failures) || !victim_kills.is_empty());
    let fallback_macs: Vec<MacAddr> = (0..spec.p).map(|i| MacAddr::for_node(i, 1)).collect();
    let fallback_ids: Vec<ComponentId> = if with_fallback {
        (0..spec.p).map(|_| sim.reserve_id()).collect()
    } else {
        Vec::new()
    };
    // A pure protocol processor has no card datapath worth keeping, so
    // its only recovery is the full restart.
    let policy = if spec.technology == Technology::InicProtocol {
        RecoveryPolicy::FullRestart
    } else {
        spec.recovery
    };
    // Rank-local recovery needs the coordinator that agrees on the
    // cluster-wide resume phase.
    let coordinator = if with_fallback && policy != RecoveryPolicy::FullRestart {
        Some(sim.reserve_id())
    } else {
        None
    };
    let mut port_labels: Vec<String> = Vec::new();
    for rank in 0..spec.p {
        let home = topo.home[rank];
        let sw_port = switches[home].attach(macs[rank], nic_ids[rank], 0, link);
        let mut uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_ids[home],
            sw_port,
            0,
        );
        if let Some(pl) = plan {
            if let Some(imp) = pl.impairment_for(LinkId::NodeUplink(rank as u32)) {
                uplink.set_impairment(imp);
            }
            if let Some(imp) = pl.impairment_for(LinkId::SwitchDownlink(rank as u32)) {
                switches[home].set_port_impairment(sw_port, imp);
            }
            // Conservation counters for the Auditor, faulted runs only
            // (unlabelled ports publish nothing — the pristine wiring
            // stays byte-identical).
            uplink.set_stats_label(format!("up{rank}"));
            switches[home].set_port_stats_label(sw_port, format!("swdown{rank}"));
            port_labels.push(format!("up{rank}"));
            port_labels.push(format!("swdown{rank}"));
        }
        let fallback = if with_fallback {
            // On the single switch `fallback_home` is the same switch —
            // the second port of the original wiring. On a fabric it is
            // the next host-bearing edge switch that no planned switch
            // kill dooms.
            let fb_home = fb_home_of(rank);
            let fb_port =
                switches[fb_home].attach(fallback_macs[rank], fallback_ids[rank], 0, link);
            let mut fb_uplink = EgressPort::new(
                link.rate,
                link.prop_delay,
                acc_net::presets::NIC_BUFFER,
                switch_ids[fb_home],
                fb_port,
                0,
            );
            fb_uplink.set_stats_label(format!("fb{rank}"));
            switches[fb_home].set_port_stats_label(fb_port, format!("swfb{rank}"));
            port_labels.push(format!("fb{rank}"));
            port_labels.push(format!("swfb{rank}"));
            sim.register(
                fallback_ids[rank],
                TcpHostNic::new(
                    format!("tcp-fb{rank}"),
                    fallback_macs[rank],
                    driver_ids[rank],
                    fb_uplink,
                    TcpParams::default(),
                    HostPathCosts::athlon_pci(),
                    InterruptCosts::athlon_linux24(),
                    ModerationPolicy::syskonnect_default(),
                ),
            );
            Some((fallback_ids[rank], fallback_macs.clone()))
        } else {
            None
        };
        // INIC reliability (NACK/retransmit recovery) turns on for any
        // faulted run, and also for every multi-switch fabric: the
        // card's no-loss scheduling guarantee only covers the single
        // switch it was derived for — shared trunks can legitimately
        // drop under contention, and a re-routed path must recover the
        // frames the old one had in flight.
        let attachment = match spec.technology {
            Technology::FastEthernet | Technology::GigabitTcp => {
                sim.register(
                    nic_ids[rank],
                    TcpHostNic::new(
                        format!("tcp{rank}"),
                        macs[rank],
                        driver_ids[rank],
                        uplink,
                        TcpParams::default(),
                        HostPathCosts::athlon_pci(),
                        InterruptCosts::athlon_linux24(),
                        ModerationPolicy::syskonnect_default(),
                    ),
                );
                Attachment::Tcp {
                    nic: nic_ids[rank],
                    macs: macs.clone(),
                }
            }
            Technology::InicIdeal | Technology::InicProtocol => {
                sim.register(
                    nic_ids[rank],
                    InicCard::new(
                        format!("inic{rank}"),
                        rank as u32,
                        macs[rank],
                        driver_ids[rank],
                        uplink,
                        FpgaDevice::virtex_next_gen(),
                        CardPorts::ideal(),
                    )
                    .with_reliability(plan.is_some() || fabric_mode)
                    .with_peers(macs.clone()),
                );
                Attachment::Inic {
                    card: nic_ids[rank],
                    macs: macs.clone(),
                    mode: if spec.technology == Technology::InicProtocol {
                        InicMode::ProtocolProcessor
                    } else {
                        InicMode::Combined
                    },
                    fallback,
                }
            }
            Technology::InicPrototype => {
                sim.register(
                    nic_ids[rank],
                    InicCard::new(
                        format!("inic{rank}"),
                        rank as u32,
                        macs[rank],
                        driver_ids[rank],
                        uplink,
                        FpgaDevice::xc4085xla(),
                        CardPorts::aceii(),
                    )
                    .with_reliability(plan.is_some() || fabric_mode)
                    .with_peers(macs.clone()),
                );
                Attachment::Inic {
                    card: nic_ids[rank],
                    macs: macs.clone(),
                    mode: InicMode::Combined,
                    fallback,
                }
            }
        };
        let fault_ctl = FaultCtl {
            stalls: plan
                .map(|pl| StallSchedule::new(pl.stall_windows(rank as u32)))
                .unwrap_or_default(),
            policy,
            coordinator,
        };
        match make_driver(rank, attachment, fault_ctl) {
            DriverBox::Fft(d) => sim.register(driver_ids[rank], *d),
            DriverBox::Sort(d) => sim.register(driver_ids[rank], *d),
            DriverBox::Coll(d) => sim.register(driver_ids[rank], *d),
        }
    }
    // Trunk ports append after every host attachment, so both ends'
    // indices are computable up front: walk the canonical (sorted)
    // trunk list once, in order.
    let mut trunk_port: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); topo.switch_count];
    {
        let mut next_port: Vec<usize> = switches.iter().map(Switch::port_count).collect();
        for &(a, b) in &topo.trunks {
            let (pa, pb) = (next_port[a], next_port[b]);
            next_port[a] += 1;
            next_port[b] += 1;
            assert_eq!(switches[a].attach_trunk(switch_ids[b], pb, link), pa);
            assert_eq!(switches[b].attach_trunk(switch_ids[a], pa, link), pb);
            trunk_port[a].insert(b, pa);
            trunk_port[b].insert(a, pb);
            if let Some(pl) = plan {
                // LinkDown windows darken both directions of the trunk;
                // the two directions draw disjoint RNG streams.
                if let Some(imp) = pl.trunk_impairment(a as u32, b as u32) {
                    switches[a].set_port_impairment(pa, imp);
                }
                if let Some(imp) = pl.trunk_impairment(b as u32, a as u32) {
                    switches[b].set_port_impairment(pb, imp);
                }
                switches[a].set_port_stats_label(pa, format!("trunk{a}-{b}"));
                switches[b].set_port_stats_label(pb, format!("trunk{b}-{a}"));
                port_labels.push(format!("trunk{a}-{b}"));
                port_labels.push(format!("trunk{b}-{a}"));
            }
        }
    }
    // Precompute the routing timeline and arm the fabric: epoch-0
    // tables install before the first event, later epochs swap in via
    // RouteUpdate at their boundary instants, switch deaths fire as
    // SwitchKill. All of it is derived deterministically from the spec,
    // so identical specs wire identical fabrics at any thread count.
    let fabric_sched = if fabric_mode {
        let mut attachments: Vec<FabricAttachment> = (0..spec.p)
            .map(|rank| FabricAttachment {
                mac: macs[rank],
                switch: topo.home[rank],
                rank,
            })
            .collect();
        if with_fallback {
            attachments.extend((0..spec.p).map(|rank| FabricAttachment {
                mac: fallback_macs[rank],
                switch: fb_home_of(rank),
                rank,
            }));
        }
        let outages: Vec<TrunkOutage> = plan
            .map(|pl| {
                pl.link_downs()
                    .iter()
                    .map(|&(a, b, from, until)| TrunkOutage {
                        a: a as usize,
                        b: b as usize,
                        from,
                        until,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let sched = compute_schedule(&topo, &attachments, &outages, &switch_kills);
        for (s, sw) in switches.iter_mut().enumerate() {
            sw.enable_routing(to_port_routes(&sched.epochs[0].tables[s], &trunk_port[s]));
        }
        for e in &sched.epochs[1..] {
            for (s, &sid) in switch_ids.iter().enumerate() {
                sim.schedule_at(
                    e.start,
                    sid,
                    RouteUpdate {
                        routes: to_port_routes(&e.tables[s], &trunk_port[s]),
                    },
                );
            }
        }
        for &(s, at) in &switch_kills {
            sim.schedule_at(at, switch_ids[s], SwitchKill);
        }
        Some(sched)
    } else {
        None
    };
    for (&sid, sw) in switch_ids.iter().zip(switches) {
        sim.register(sid, sw);
    }
    if let Some(coord) = coordinator {
        sim.register(coord, RecoveryCoordinator::new(driver_ids.clone()));
    }
    for &d in &driver_ids {
        sim.schedule_at(SimTime::ZERO, d, ());
    }
    let mut audit_cfg = None;
    if let Some(pl) = plan {
        // Faulted runs keep a trace tail so an Auditor violation dumps
        // the events around the offence, and run under its watch.
        sim.enable_trace(256);
        let cfg = AuditConfig {
            ports: port_labels,
            cards: if spec.technology.is_inic() {
                (0..spec.p).map(|i| format!("inic{i}")).collect()
            } else {
                Vec::new()
            },
            switches: if fabric_mode {
                (0..topo.switch_count).map(|i| format!("fsw{i}")).collect()
            } else {
                Vec::new()
            },
            credit_window: CREDIT_WINDOW,
            // A killed card legitimately strands whatever its uplink and
            // switch port still queued; a killed switch does the same to
            // every victim rank's uplink.
            expect_quiescent_ports: !pl.has_card_failures() && switch_kills.is_empty(),
            p: spec.p as u64,
        };
        let auditor_id = sim.reserve_id();
        sim.register(auditor_id, Auditor::new(cfg.clone()));
        sim.schedule_at(SimTime::ZERO, auditor_id, ());
        audit_cfg = Some(cfg);
    }
    if spec.technology.is_inic() {
        if let Some(pl) = plan {
            // Schedule the card deaths: the card itself goes dark, and
            // every driver is told so the cluster can recover under the
            // active policy.
            for (node, at) in pl.card_failures() {
                let node_idx = node as usize;
                assert!(node_idx < spec.p, "fault plan kills a card beyond P");
                sim.schedule_at(at, nic_ids[node_idx], InicKill);
                for &d in &driver_ids {
                    sim.schedule_at(at, d, CardFailed { node });
                }
            }
            // Switch-failure victims: every rank homed on a dead edge
            // switch loses its primary datapath at that instant. The
            // kill reuses the card-death path wholesale — the card goes
            // dark, every driver hears CardFailed, and recovery resumes
            // from the last round checkpoint over the dual-homed
            // fallback NIC once the coordinator agrees.
            for &(node, at) in &victim_kills {
                sim.schedule_at(at, nic_ids[node as usize], InicKill);
                for &d in &driver_ids {
                    sim.schedule_at(at, d, CardFailed { node });
                }
            }
            // Schedule the transient reconfiguration windows: the card
            // buffers and recovers on its own, so only the card hears
            // about them. (On commodity technologies there is no card —
            // the window is a no-op by construction.)
            for (node, at, hold) in pl.card_reconfigures() {
                let node_idx = node as usize;
                assert!(node_idx < spec.p, "fault plan reconfigures a card beyond P");
                sim.schedule_at(at, nic_ids[node_idx], InicReconfigure { hold });
            }
        }
    }
    Wiring {
        sim,
        drivers: driver_ids,
        nics: nic_ids,
        switches: switch_ids,
        technology: spec.technology,
        fabric: fabric_sched,
        audit: audit_cfg,
    }
}

impl Wiring {
    /// Run the simulation to completion under the deadline hierarchy's
    /// watchdog — **the** deadline-aware wrapper every production run
    /// goes through (acc-lint R6 bans raw `run()` elsewhere).
    ///
    /// Three hang shapes all land here as a structured [`HangReport`]:
    /// a watchdog abort (event budget, livelock, run deadline), and the
    /// quieter *deadlock* — the event queue drains while drivers still
    /// wait on peers that will never send. `progress` reads one
    /// driver's phase snapshot (the driver type is workload-specific).
    fn run_to_completion(
        &mut self,
        hierarchy: &DeadlineHierarchy,
        progress: impl Fn(&Simulation, ComponentId) -> DriverProgress,
    ) -> Result<(), Box<HangReport>> {
        let wd = hierarchy.watchdog();
        // acc-lint: allow(R6, reason = "this is the deadline-aware wrapper itself: the watchdog built two lines up bounds the run")
        let outcome = self.sim.run_guarded(&wd);
        let ranks: Vec<DriverProgress> = self
            .drivers
            .iter()
            .map(|&d| progress(&self.sim, d))
            .collect();
        match outcome {
            Ok(_) if ranks.iter().all(|r| r.done) => Ok(()),
            Ok(_) => {
                let mut report = HangReport::diagnose(
                    HangCause::Deadlock,
                    self.technology,
                    self.sim.now(),
                    ranks,
                    hierarchy,
                    None,
                );
                report.partition = self.partition_at_hang();
                Err(Box::new(report))
            }
            // A deadline that fires after every rank is done is not a
            // hang: the application completed inside its budget and the
            // only events left are protocol tail chatter — typically a
            // far-future RTO retransmit timer for a final segment whose
            // ACK a lossy plan ate. The chatter is self-limiting (capped
            // backoff, bounded retries), so cut it off. Event-budget and
            // livelock aborts stay fatal even with done drivers: those
            // mean the protocol layer itself stopped converging.
            Err(sim_report)
                if sim_report.kind == HangKind::DeadlineExceeded
                    && ranks.iter().all(|r| r.done) =>
            {
                Ok(())
            }
            Err(sim_report) => {
                let mut report = HangReport::diagnose(
                    HangCause::Watchdog(sim_report.kind),
                    self.technology,
                    self.sim.now(),
                    ranks,
                    hierarchy,
                    Some(*sim_report),
                );
                report.partition = self.partition_at_hang();
                Err(Box::new(report))
            }
        }
    }

    /// The fabric partition to blame for a hang: the one in effect at
    /// abort time, or — if the fabric had already healed — the first
    /// the routing timeline ever saw. `None` on single-switch runs and
    /// on fabrics whose fault schedule never disconnected anyone.
    fn partition_at_hang(&self) -> Option<PartitionReport> {
        let sched = self.fabric.as_ref()?;
        sched
            .epoch_at(self.sim.now())
            .partition
            .clone()
            .or_else(|| sched.first_partition().cloned())
    }

    /// Frames dropped at switch output queues during the run, across
    /// every switch of the fabric.
    fn switch_drops(&self) -> u64 {
        self.switches
            .iter()
            .map(|&s| self.sim.component::<Switch>(s).total_drops())
            .sum()
    }

    /// Total retransmissions across the cluster, whichever stack did
    /// them: INIC recovery resends plus TCP RTO and fast retransmits.
    fn total_retransmits(&self) -> u64 {
        self.sim
            .stats()
            .counters()
            .filter(|((_, name), _)| {
                matches!(
                    *name,
                    "retransmits" | "rto_retransmits" | "fast_retransmits"
                )
            })
            .map(|(_, v)| v)
            .sum()
    }

    /// Assemble the fault telemetry after a run: retransmits from
    /// whichever stack did them, stall/reconfigure counters from the
    /// drivers and cards, degradation and resume data from the callers.
    fn fault_diagnostics(
        &self,
        degraded_nodes: u64,
        resumed_from_phase: Option<u32>,
    ) -> FaultDiagnostics {
        let stats = self.sim.stats();
        let stalled_nodes = stats
            .counters()
            .filter(|((_, name), v)| *name == "stall_deferrals" && *v > 0)
            .count() as u64;
        let reconfig_windows_survived = stats
            .counters()
            .filter(|((_, name), _)| *name == "reconfig_windows_survived")
            .map(|(_, v)| v)
            .sum();
        FaultDiagnostics {
            retransmits: self.total_retransmits(),
            degraded_nodes,
            stalled_nodes,
            reconfig_windows_survived,
            resumed_from_phase,
        }
    }

    /// Run the end-of-run audit pass (faulted runs only).
    fn final_audit(&self) {
        if let Some(cfg) = &self.audit {
            audit::final_check(self.sim.stats(), cfg);
        }
    }

    /// Maximum per-node protocol CPU time and total interrupts taken on
    /// the host side of the network path. On INIC technologies the host
    /// takes only the cards' completion interrupts and spends no
    /// protocol CPU at all.
    fn protocol_costs(&self) -> (SimDuration, u64) {
        match self.technology {
            Technology::FastEthernet | Technology::GigabitTcp => {
                let mut cpu = SimDuration::ZERO;
                let mut interrupts = 0u64;
                for &nic in &self.nics {
                    let stack = self.sim.component::<TcpHostNic>(nic);
                    cpu = cpu.max(stack.cpu_time());
                    interrupts += stack.interrupt_totals().1;
                }
                (cpu, interrupts)
            }
            Technology::InicIdeal | Technology::InicPrototype | Technology::InicProtocol => {
                let interrupts = self
                    .nics
                    .iter()
                    .map(|&nic| self.sim.component::<InicCard>(nic).interrupts_raised())
                    .sum();
                (SimDuration::ZERO, interrupts)
            }
        }
    }
}

/// Type-erased driver hand-off from the closure to the registry.
enum DriverBox {
    Fft(Box<FftDriver>),
    Sort(Box<SortDriver>),
    Coll(Box<CollDriver>),
}

/// Run the 2D-FFT application on a `rows × rows` matrix.
///
/// # Panics
/// Panics if `rows` is not a power of two or `spec.p` does not divide
/// it, or if the run hangs (see [`try_run_fft`] for the non-panicking
/// variant).
pub fn run_fft(spec: ClusterSpec, rows: usize) -> FftRunResult {
    try_run_fft(spec, rows).unwrap_or_else(|report| panic!("FFT run hung\n{report}"))
}

/// Run the 2D-FFT application, returning a structured [`HangReport`]
/// instead of panicking when the run fails to terminate.
///
/// # Panics
/// Panics if `rows` is not a power of two or `spec.p` does not divide it.
pub fn try_run_fft(spec: ClusterSpec, rows: usize) -> Result<FftRunResult, Box<HangReport>> {
    assert!(rows.is_power_of_two(), "matrix edge must be a power of two");
    assert!(
        spec.p >= 1 && rows.is_multiple_of(spec.p),
        "P must divide rows"
    );
    let matrix = random_matrix(rows, spec.seed);
    let slabs = split_row_blocks(&matrix, spec.p);
    let kernels = HostKernels::athlon_1ghz();
    let mut w = wire(&spec, |rank, attachment, fault_ctl| {
        DriverBox::Fft(Box::new(
            FftDriver::new(
                rank,
                spec.p,
                rows,
                slabs[rank].clone(),
                attachment,
                kernels.clone(),
            )
            .with_fault_ctl(fault_ctl),
        ))
    });
    let hierarchy = DeadlineHierarchy::for_run(&spec, &Workload::Fft { rows });
    w.run_to_completion(&hierarchy, |sim, d| {
        sim.component::<FftDriver>(d).progress()
    })?;
    let mut total_end = SimTime::ZERO;
    let mut start = SimTime::MAX;
    let mut compute = SimDuration::ZERO;
    let mut transpose = SimDuration::ZERO;
    let mut transpose_compute = SimDuration::ZERO;
    let mut transpose_comm = SimDuration::ZERO;
    let mut degraded_nodes = 0u64;
    let mut resumed_from: Option<u32> = None;
    let mut out_slabs: Vec<Matrix> = Vec::new();
    for &d in &w.drivers {
        let drv = w.sim.component::<FftDriver>(d);
        if drv.degraded() {
            degraded_nodes += 1;
        }
        resumed_from = resumed_from.max(drv.resumed_from());
        let t = &drv.timings;
        let done = t.done_at.expect("done");
        let began = t.started_at.expect("started");
        if done > total_end {
            total_end = done;
        }
        if began < start {
            start = began;
        }
        if t.compute > compute {
            compute = t.compute;
        }
        if t.transpose > transpose {
            transpose = t.transpose;
        }
        transpose_compute = transpose_compute.max(t.transpose_compute);
        transpose_comm = transpose_comm.max(t.transpose - t.transpose_compute);
        out_slabs.push(drv.result().clone());
    }
    let verified = if spec.verify {
        let got = join_row_blocks(&out_slabs);
        let expect = fft_2d(&matrix);
        let diff = got.max_abs_diff(&expect);
        assert!(
            diff < 1e-6,
            "distributed FFT diverges from serial oracle by {diff}"
        );
        true
    } else {
        false
    };
    let switch_drops = w.switch_drops();
    // The card's no-loss scheduling guarantee is single-switch: shared
    // trunks of a multi-switch fabric can contend, and INIC reliability
    // recovers those drops instead.
    if spec.technology.is_inic()
        && spec.fault_plan.is_none()
        && spec.fabric == FabricSpec::SingleSwitch
    {
        assert_eq!(
            switch_drops, 0,
            "INIC schedule must never oversubscribe switch buffers"
        );
    }
    let (protocol_cpu, interrupts) = w.protocol_costs();
    w.final_audit();
    Ok(FftRunResult {
        total: total_end.since(start),
        compute,
        transpose,
        transpose_compute,
        transpose_comm,
        verified,
        switch_drops,
        protocol_cpu,
        interrupts,
        faults: w.fault_diagnostics(degraded_nodes, resumed_from),
    })
}

/// The key distribution of a sort workload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KeyDistribution {
    /// Uniform keys — the paper's stated (and admittedly unrealistic)
    /// assumption.
    Uniform,
    /// Gaussian keys, as in the NAS benchmarks the paper cites — the
    /// skewed case its uniform assumption dodges.
    Gaussian,
}

/// How keys are assigned to destination ranks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PartitionStrategy {
    /// Top bits of the key (the paper's implicit choice; balanced only
    /// for uniform keys).
    TopBits,
    /// Range splitters chosen from a pre-sort sample — the fix the
    /// paper points at for non-uniform data ("sampling in a pre-sort
    /// phase helps address the shortcomings of our assumption").
    SampledSplitters,
}

/// Run the integer-sort application on `total_keys` uniform keys spread
/// evenly over the nodes (the paper's configuration).
///
/// # Panics
/// Panics if the run hangs (see [`try_run_sort`]).
pub fn run_sort(spec: ClusterSpec, total_keys: u64) -> SortRunResult {
    try_run_sort(spec, total_keys).unwrap_or_else(|report| panic!("sort run hung\n{report}"))
}

/// Non-panicking variant of [`run_sort`].
pub fn try_run_sort(spec: ClusterSpec, total_keys: u64) -> Result<SortRunResult, Box<HangReport>> {
    try_run_sort_custom(
        spec,
        total_keys,
        KeyDistribution::Uniform,
        PartitionStrategy::TopBits,
    )
}

/// Run the integer sort with an explicit key distribution and
/// partitioning strategy (the skew ablation).
///
/// # Panics
/// Panics if the run hangs (see [`try_run_sort_custom`]).
pub fn run_sort_custom(
    spec: ClusterSpec,
    total_keys: u64,
    distribution: KeyDistribution,
    strategy: PartitionStrategy,
) -> SortRunResult {
    try_run_sort_custom(spec, total_keys, distribution, strategy)
        .unwrap_or_else(|report| panic!("sort run hung\n{report}"))
}

/// Non-panicking variant of [`run_sort_custom`]: a hung run returns a
/// structured [`HangReport`] naming the stuck phase and rank.
pub fn try_run_sort_custom(
    spec: ClusterSpec,
    total_keys: u64,
    distribution: KeyDistribution,
    strategy: PartitionStrategy,
) -> Result<SortRunResult, Box<HangReport>> {
    assert!(spec.p >= 1);
    let per_node = (total_keys / spec.p as u64) as usize;
    let inputs: Vec<Vec<u32>> = match distribution {
        KeyDistribution::Uniform => distributed_uniform_keys(per_node, spec.p, spec.seed),
        KeyDistribution::Gaussian => (0..spec.p)
            .map(|rank| gaussian_keys(per_node, spec.seed.wrapping_add(rank as u64 * 0x9E37_79B9)))
            .collect(),
    };
    // The pre-sort sampling phase: each rank contributes a sparse sample
    // of its keys; the shared splitter table is the sample's quantiles.
    // Its cost (a few KiB broadcast) is negligible at these scales and
    // is not charged.
    let splitters = match strategy {
        PartitionStrategy::TopBits => None,
        PartitionStrategy::SampledSplitters => {
            let step = (per_node / 128).max(1);
            let sample: Vec<u32> = inputs
                .iter()
                .flat_map(|keys| keys.iter().step_by(step).copied())
                .collect();
            Some(splitters_from_sample(&sample, spec.p))
        }
    };
    let variant = match spec.technology {
        Technology::FastEthernet | Technology::GigabitTcp => SortVariant::HostOnly,
        Technology::InicIdeal => SortVariant::InicFull,
        Technology::InicPrototype => SortVariant::InicTwoPhase,
        Technology::InicProtocol => SortVariant::ProtocolOnly,
    };
    let kernels = HostKernels::athlon_1ghz();
    let mut w = wire(&spec, |rank, attachment, fault_ctl| {
        let mut driver = SortDriver::new(
            rank,
            spec.p,
            inputs[rank].clone(),
            variant,
            attachment,
            kernels.clone(),
        )
        .with_fault_ctl(fault_ctl);
        if let Some(sp) = &splitters {
            driver = driver.with_splitters(sp.clone());
        }
        DriverBox::Sort(Box::new(driver))
    });
    let hierarchy = DeadlineHierarchy::for_run(&spec, &Workload::Sort { total_keys });
    w.run_to_completion(&hierarchy, |sim, d| {
        sim.component::<SortDriver>(d).progress()
    })?;
    let mut total_end = SimTime::ZERO;
    let mut start = SimTime::MAX;
    let (mut bucket1, mut comm, mut bucket2, mut count) = (
        SimDuration::ZERO,
        SimDuration::ZERO,
        SimDuration::ZERO,
        SimDuration::ZERO,
    );
    let mut degraded_nodes = 0u64;
    let mut resumed_from: Option<u32> = None;
    let mut outputs: Vec<Vec<u32>> = Vec::new();
    for &d in &w.drivers {
        let drv = w.sim.component::<SortDriver>(d);
        if drv.degraded() {
            degraded_nodes += 1;
        }
        resumed_from = resumed_from.max(drv.resumed_from());
        let t = &drv.timings;
        let done = t.done_at.expect("done");
        let began = t.started_at.expect("started");
        if done > total_end {
            total_end = done;
        }
        if began < start {
            start = began;
        }
        bucket1 = bucket1.max(t.bucket1);
        comm = comm.max(t.comm);
        bucket2 = bucket2.max(t.bucket2);
        count = count.max(t.count);
        outputs.push(drv.result().to_vec());
    }
    let verified = if spec.verify {
        // Concatenated per-rank outputs form the globally sorted key
        // sequence, equal (as a multiset and order) to a serial sort of
        // all inputs.
        let got: Vec<u32> = outputs.concat();
        assert!(is_sorted(&got), "global output not sorted");
        let mut expect: Vec<u32> = inputs.concat();
        expect.sort_unstable();
        assert_eq!(got, expect, "distributed sort diverges from serial sort");
        true
    } else {
        false
    };
    let switch_drops = w.switch_drops();
    // The card's no-loss scheduling guarantee is single-switch: shared
    // trunks of a multi-switch fabric can contend, and INIC reliability
    // recovers those drops instead.
    if spec.technology.is_inic()
        && spec.fault_plan.is_none()
        && spec.fabric == FabricSpec::SingleSwitch
    {
        assert_eq!(
            switch_drops, 0,
            "INIC schedule must never oversubscribe switch buffers"
        );
    }
    let (protocol_cpu, interrupts) = w.protocol_costs();
    w.final_audit();
    Ok(SortRunResult {
        total: total_end.since(start),
        bucket1,
        comm,
        bucket2,
        count,
        verified,
        switch_drops,
        protocol_cpu,
        interrupts,
        faults: w.fault_diagnostics(degraded_nodes, resumed_from),
    })
}

/// Result of one AllReduce run (collective-operations extension).
#[derive(Clone, Debug)]
pub struct ReduceRunResult {
    /// Wall time from start (post-configuration) to the last node done.
    pub total: SimDuration,
    /// Max per-node exchange wall time.
    pub comm: SimDuration,
    /// Max per-node host reduction time (zero on INIC paths).
    pub reduce: SimDuration,
    /// Whether every node obtained the exact element-wise sum.
    pub verified: bool,
}

/// Result of one collective-engine run.
#[derive(Clone, Debug)]
pub struct CollRunResult {
    /// Wall time from start (post-configuration) to the last node done.
    pub total: SimDuration,
    /// Max per-node wall time spent waiting on round transfers.
    pub comm: SimDuration,
    /// Max per-node host compute (folds on the host paths, modelled
    /// local sweeps). Zero for pure collectives on the combined INIC.
    pub compute: SimDuration,
    /// Whether every node's output matched the first-principles oracle.
    pub verified: bool,
    /// What the fault plan did to the run (all zeros on a clean run).
    pub faults: FaultDiagnostics,
}

/// The acc-coll execution-path class a technology reduces to.
pub fn path_class(technology: Technology) -> PathClass {
    match technology {
        Technology::FastEthernet | Technology::GigabitTcp => PathClass::HostTcp,
        Technology::InicIdeal | Technology::InicPrototype => PathClass::InicCombined,
        Technology::InicProtocol => PathClass::InicProtocol,
    }
}

/// Policy-select the algorithm for one collective cell on a
/// technology (message size × processor count × execution path).
pub fn select_algorithm(
    technology: Technology,
    op: CollectiveOp,
    p: usize,
    elems: usize,
) -> Algorithm {
    acc_coll::select(op, p, elems, path_class(technology))
}

/// Pre-validate the offloaded datapath of every rank against the
/// technology's device, *before* any cluster is wired.
///
/// Returns `Ok(None)` for the host-TCP technologies (nothing to
/// offload) and one CLB-checked [`OffloadPlan`] per rank for the INIC
/// technologies.
///
/// # Errors
/// [`OffloadError::InsufficientLogic`] when a rank's operator pipeline
/// exceeds the device's CLB pool — the structured over-capacity
/// rejection (a 128-way collective on the prototype card, say).
pub fn plan_collective_offload(
    technology: Technology,
    schedules: &[Schedule],
) -> Result<Option<Vec<OffloadPlan>>, OffloadError> {
    let Some((device, mode)) = inic_device_mode(technology) else {
        return Ok(None);
    };
    let p = schedules.len();
    schedules
        .iter()
        .map(|s| acc_coll::offload::plan(s, p, mode, &device))
        .collect::<Result<Vec<OffloadPlan>, OffloadError>>()
        .map(Some)
}

/// The device/mode pair each INIC technology configures, or `None` for
/// the host-TCP technologies.
fn inic_device_mode(technology: Technology) -> Option<(FpgaDevice, InicMode)> {
    match technology {
        Technology::FastEthernet | Technology::GigabitTcp => None,
        Technology::InicIdeal => Some((FpgaDevice::virtex_next_gen(), InicMode::Combined)),
        Technology::InicPrototype => Some((FpgaDevice::xc4085xla(), InicMode::Combined)),
        Technology::InicProtocol => {
            Some((FpgaDevice::virtex_next_gen(), InicMode::ProtocolProcessor))
        }
    }
}

/// Deterministic per-rank contributions with an exactly computable
/// sum (integers below 2^52 stay exact in f64 regardless of the
/// reduction order).
fn collective_input(rank: usize, elems: usize) -> Vec<f64> {
    (0..elems)
        .map(|i| ((rank + 1) * (i % 1000 + 1)) as f64)
        .collect()
}

/// Run one collective through the engine with an explicit algorithm.
///
/// # Panics
/// Panics if the (op, algorithm, p, elems) cell is unsupported, if the
/// offload plan exceeds the device's CLB budget (pre-check with
/// [`plan_collective_offload`] to get the structured error instead), or
/// if the run hangs (see [`try_run_collective`]).
pub fn run_collective(
    spec: ClusterSpec,
    op: CollectiveOp,
    algo: Algorithm,
    elems: usize,
) -> CollRunResult {
    try_run_collective(spec, op, algo, elems)
        .unwrap_or_else(|report| panic!("{op}/{algo} run hung\n{report}"))
}

/// Non-panicking variant of [`run_collective`].
pub fn try_run_collective(
    spec: ClusterSpec,
    op: CollectiveOp,
    algo: Algorithm,
    elems: usize,
) -> Result<CollRunResult, Box<HangReport>> {
    assert!(
        acc_coll::supports(op, algo, spec.p, elems),
        "unsupported collective cell: {op} via {algo} at p={}, elems={elems}",
        spec.p
    );
    let schedules = acc_coll::plan::build_all(op, algo, spec.p, elems);
    let inputs: Vec<Vec<f64>> = (0..spec.p)
        .map(|rank| collective_input(rank, elems))
        .collect();
    run_schedules(
        &spec,
        &schedules,
        &inputs,
        &Workload::Collective { op, algo, elems },
        |results| {
            let expect = acc_coll::oracle(op, spec.p, &inputs);
            for (rank, r) in results.iter().enumerate() {
                assert_eq!(r, &expect[rank], "rank {rank} {op}/{algo} output mismatch");
            }
        },
    )
}

/// Run the halo-exchange workload: `iters` stencil sweeps over a
/// 1-D strip decomposition, each sweep a neighbour halo exchange plus a
/// local update, closed by a residual allreduce (allreduce-heavy by
/// construction).
///
/// # Panics
/// Panics if `spec.p` is not a power of two or `elems < 2`, or if the
/// run hangs (see [`try_run_halo`]).
pub fn run_halo(spec: ClusterSpec, elems: usize, iters: usize) -> CollRunResult {
    try_run_halo(spec, elems, iters).unwrap_or_else(|report| panic!("halo run hung\n{report}"))
}

/// Non-panicking variant of [`run_halo`].
pub fn try_run_halo(
    spec: ClusterSpec,
    elems: usize,
    iters: usize,
) -> Result<CollRunResult, Box<HangReport>> {
    let schedules: Vec<Schedule> = (0..spec.p)
        .map(|rank| acc_coll::plan::halo(rank, spec.p, elems, iters))
        .collect();
    let inputs: Vec<Vec<f64>> = (0..spec.p)
        .map(|rank| collective_input(rank, elems))
        .collect();
    run_schedules(
        &spec,
        &schedules,
        &inputs,
        &Workload::Halo { elems, iters },
        |results| {
            let expect = acc_coll::plan::run_lockstep(&schedules, &inputs);
            for (rank, r) in results.iter().enumerate() {
                assert_eq!(r, &expect[rank], "rank {rank} halo output mismatch");
            }
        },
    )
}

/// Shared engine runner: wire one [`CollDriver`] per rank over the
/// given schedules, run under the deadline hierarchy, aggregate
/// timings, and verify through `check` (which asserts on mismatch).
fn run_schedules(
    spec: &ClusterSpec,
    schedules: &[Schedule],
    inputs: &[Vec<f64>],
    workload: &Workload,
    check: impl FnOnce(&[Vec<f64>]),
) -> Result<CollRunResult, Box<HangReport>> {
    assert!(spec.p >= 1);
    let offload = plan_collective_offload(spec.technology, schedules)
        .unwrap_or_else(|e| panic!("collective offload rejected: {e}"));
    // When the plan can kill a card under a rank-local policy, the
    // survivors keep their datapaths while rerouting the dead rank's
    // legs over TCP: re-validate each healthy rank's shrunken offload
    // against the CLB budget before wiring anything, so an over-budget
    // degraded bitstream is a structured pre-flight failure, not a
    // sim-time surprise.
    if let Some((device, mode)) = inic_device_mode(spec.technology) {
        if let Some(plan) = &spec.fault_plan {
            let card_dead: std::collections::BTreeSet<usize> = plan
                .card_failures()
                .iter()
                .map(|&(node, _)| node as usize)
                .collect();
            // Ranks a switch failure will strand degrade exactly like
            // card deaths (the wiring kills their cards at that
            // instant), so the pre-flight prices them the same way.
            let home = spec.fabric.build(spec.p).home;
            let dead = acc_coll::recovery::with_partitioned(
                &card_dead,
                plan.switch_failures().iter().flat_map(|&(s, _)| {
                    let home = &home;
                    (0..spec.p).filter(move |&r| home[r] == s as usize)
                }),
            );
            if !dead.is_empty() {
                for (rank, s) in schedules.iter().enumerate() {
                    if dead.contains(&rank) {
                        continue;
                    }
                    acc_coll::recovery::degraded_offload(s, spec.p, &dead, 0, mode, &device)
                        .unwrap_or_else(|e| {
                            panic!("degraded collective offload rejected for rank {rank}: {e}")
                        });
                }
            }
        }
    }
    // Debug builds statically prove the schedule set before wiring the
    // engine: leg pairing / deadlock-freedom always, and reduce
    // conservation for collective workloads (halo stencils have no
    // single-collective oracle). Release builds skip the pass — the
    // same proofs run offline via `acc-verify --schedules`.
    #[cfg(debug_assertions)]
    {
        if let Err(vs) = acc_coll::verify::verify_schedules(schedules) {
            for v in &vs {
                eprintln!("{v}");
            }
            panic!(
                "static schedule verification failed: {} violation(s)",
                vs.len()
            );
        }
        if let &Workload::Collective { op, elems, .. } = workload {
            if let Err(vs) = acc_coll::verify::verify_conservation(op, elems, schedules) {
                for v in &vs {
                    eprintln!("{v}");
                }
                panic!(
                    "static conservation verification failed: {} violation(s)",
                    vs.len()
                );
            }
        }
    }
    let kernels = HostKernels::athlon_1ghz();
    let mut w = wire(spec, |rank, attachment, fault_ctl| {
        DriverBox::Coll(Box::new(
            CollDriver::new(
                rank,
                spec.p,
                schedules[rank].clone(),
                inputs[rank].clone(),
                attachment,
                kernels.clone(),
                offload.as_ref().map(|plans| plans[rank].clone()),
            )
            .with_fault_ctl(fault_ctl),
        ))
    });
    let hierarchy = DeadlineHierarchy::for_run(spec, workload);
    w.run_to_completion(&hierarchy, |sim, d| {
        sim.component::<CollDriver>(d).progress()
    })?;
    let mut total_end = SimTime::ZERO;
    let mut start = SimTime::MAX;
    let mut comm = SimDuration::ZERO;
    let mut compute = SimDuration::ZERO;
    let mut results: Vec<Vec<f64>> = Vec::new();
    let mut degraded_nodes = 0u64;
    let mut resumed_from: Option<u32> = None;
    for &d in &w.drivers {
        let drv = w.sim.component::<CollDriver>(d);
        let t = &drv.timings;
        total_end = total_end.max(t.done_at.expect("done"));
        start = start.min(t.started_at.expect("started"));
        comm = comm.max(t.comm);
        compute = compute.max(t.compute);
        if drv.degraded() {
            degraded_nodes += 1;
        }
        resumed_from = resumed_from.max(drv.resumed_from());
        results.push(drv.result());
    }
    let verified = if spec.verify {
        check(&results);
        true
    } else {
        false
    };
    // Single-switch only, as in the application runners: fabric trunks
    // may contend and rely on INIC reliability instead.
    if spec.technology.is_inic()
        && spec.fault_plan.is_none()
        && spec.fabric == FabricSpec::SingleSwitch
    {
        assert_eq!(w.switch_drops(), 0, "INIC collective must not drop");
    }
    w.final_audit();
    let faults = w.fault_diagnostics(degraded_nodes, resumed_from);
    Ok(CollRunResult {
        total: total_end.since(start),
        comm,
        compute,
        verified,
        faults,
    })
}

/// Run a flat AllReduce (sum) of one `elems`-element f64 vector per
/// node on the chosen technology — now a thin veneer over the
/// collective engine, with the algorithm policy-selected for the
/// technology's execution path.
///
/// # Panics
/// Panics if the run hangs (see [`try_run_allreduce`]).
pub fn run_allreduce(spec: ClusterSpec, elems: usize) -> ReduceRunResult {
    try_run_allreduce(spec, elems).unwrap_or_else(|report| panic!("AllReduce run hung\n{report}"))
}

/// Non-panicking variant of [`run_allreduce`].
pub fn try_run_allreduce(
    spec: ClusterSpec,
    elems: usize,
) -> Result<ReduceRunResult, Box<HangReport>> {
    let algo = select_algorithm(spec.technology, CollectiveOp::AllReduce, spec.p, elems);
    let r = try_run_collective(spec, CollectiveOp::AllReduce, algo, elems)?;
    Ok(ReduceRunResult {
        total: r.total,
        comm: r.comm,
        reduce: r.compute,
        verified: r.verified,
    })
}
