//! The per-node integer-sort driver — Section 3.2 on every network
//! technology.
//!
//! Pipeline: bucket the local keys by destination rank, exchange
//! (bucket `i` goes to rank `i`), bucket the received keys into
//! cache-sized buckets, count-sort every bucket. Where each step runs
//! depends on the technology:
//!
//! * **commodity NIC** (Fig. 3(a)): both bucket passes on the host CPU;
//!   TCP carries length-prefixed key streams.
//! * **ideal INIC** (Fig. 3(b)): both bucket passes in the card
//!   datapath; the host only count-sorts cache-resident buckets.
//! * **prototype INIC** (Fig. 7): the 4085XLA only fits a 16-bucket
//!   sorter, so the card delivers 16 coarse buckets and the host runs a
//!   second bucket pass before count-sorting — "surprisingly, this can
//!   provide higher performance than having the host sort directly into
//!   16 × N buckets".

use std::any::Any;
use std::collections::HashMap;

use acc_algos::sort::{
    bucket_index, bucket_sort, bytes_to_keys, count_sort, destination_by_splitters,
    destination_rank, is_sorted, keys_to_bytes,
};
use acc_fpga::{
    Bitstream, GatherKind, InicConfigure, InicConfigured, InicExpect, InicGatherComplete, InicMode,
    InicScatter, InicScatterDone, ScatterKind,
};
use acc_host::HostKernels;
use acc_proto::{TcpDelivered, TcpSend};
use acc_sim::{Component, Ctx, DataSize, SimDuration, SimTime};

use super::{recv_buckets_for, Attachment};

/// How the receive-side bucketing is split between card and host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortVariant {
    /// Commodity NIC: host does everything.
    HostOnly,
    /// Ideal INIC: card buckets straight into the final `N` buckets.
    InicFull,
    /// Prototype INIC: card buckets into 16; host re-buckets into `N`.
    InicTwoPhase,
    /// INIC as a pure protocol processor: host does both bucket passes,
    /// the card only carries the lightweight protocol (mode ablation).
    ProtocolOnly,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Init,
    /// Host phase-1 bucket charge running (commodity only).
    Bucket1,
    /// Keys in flight.
    Exchange,
    /// Host phase-2 bucket charge running.
    Bucket2,
    /// Count-sort charge running.
    Count,
    Done,
}

/// Self events marking the end of charged compute. Each carries the
/// epoch it was scheduled in: a card failover bumps the epoch and
/// restarts the state machine, and compute timers from the abandoned
/// attempt must not fire into the new one.
struct Bucket1Done(u64);
struct Bucket2Done(u64);
struct CountDone(u64);

/// Timing decomposition of one node's run.
#[derive(Clone, Debug, Default)]
pub struct SortTimings {
    /// Host phase-1 bucket time (zero on INIC paths).
    pub bucket1: SimDuration,
    /// Exchange wall time (first send to all-received).
    pub comm: SimDuration,
    /// Host phase-2 bucket time (zero on the ideal INIC path).
    pub bucket2: SimDuration,
    /// Final count-sort time.
    pub count: SimDuration,
    /// Absolute completion instant.
    pub done_at: Option<SimTime>,
    /// Absolute start instant (post-configuration).
    pub started_at: Option<SimTime>,
}

/// The per-node integer-sort driver.
pub struct SortDriver {
    label: String,
    rank: usize,
    p: usize,
    variant: SortVariant,
    attachment: Attachment,
    kernels: HostKernels,
    keys: Vec<u32>,
    /// Optional range splitters for the destination partitioning (the
    /// pre-sort sampling extension for skewed keys); `None` = the
    /// paper's top-bits partitioning.
    splitters: Option<Vec<u32>>,
    /// Final cache-sized bucket count `N`.
    recv_buckets: usize,
    phase: Phase,
    phase_entered: SimTime,
    /// Commodity receive reassembly: raw bytes per src rank.
    rx: HashMap<usize, Vec<u8>>,
    /// Commodity: keys received (parsed once each stream's length-prefix
    /// is satisfied).
    received_keys: Vec<Vec<u32>>,
    streams_pending: usize,
    /// INIC gather result (16 or N card buckets, concatenated).
    card_bucket_data: Option<(Vec<u8>, Vec<usize>)>,
    sorted: Vec<u32>,
    /// Restart epoch; bumped on card failover so stale self events die.
    epoch: u64,
    /// Whether this driver abandoned its INIC card and restarted over
    /// the commodity fallback path.
    failed_over: bool,
    /// Timing decomposition.
    pub timings: SortTimings,
}

impl SortDriver {
    /// Build a driver holding this rank's initial keys.
    pub fn new(
        rank: usize,
        p: usize,
        keys: Vec<u32>,
        variant: SortVariant,
        attachment: Attachment,
        kernels: HostKernels,
    ) -> SortDriver {
        let recv_buckets = recv_buckets_for(keys.len() as u64);
        SortDriver {
            label: format!("sort-driver{rank}"),
            rank,
            p,
            variant,
            attachment,
            kernels,
            keys,
            splitters: None,
            recv_buckets,
            phase: Phase::Init,
            phase_entered: SimTime::ZERO,
            rx: HashMap::new(),
            received_keys: Vec::new(),
            streams_pending: 0,
            card_bucket_data: None,
            sorted: Vec::new(),
            epoch: 0,
            failed_over: false,
            timings: SortTimings::default(),
        }
    }

    /// Use sampled range splitters instead of top-bits partitioning
    /// (builder style; must be the same table on every rank).
    #[must_use]
    pub fn with_splitters(mut self, splitters: Vec<u32>) -> SortDriver {
        assert_eq!(splitters.len() + 1, self.p, "need P-1 splitters");
        self.splitters = Some(splitters);
        self
    }

    /// Distribute this node's keys to their destination ranks using the
    /// active partitioning (top bits or splitters).
    fn partition_keys(&self) -> Vec<Vec<u32>> {
        match &self.splitters {
            Some(sp) => {
                let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.p];
                for &k in &self.keys {
                    buckets[destination_by_splitters(k, sp)].push(k);
                }
                buckets
            }
            None if self.p == 1 => vec![self.keys.clone()],
            None => bucket_sort(&self.keys, self.p),
        }
    }

    /// This rank's sorted key range, available when done.
    pub fn result(&self) -> &[u32] {
        assert_eq!(self.phase, Phase::Done, "driver not finished");
        &self.sorted
    }

    /// Whether the run completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether the driver completed over the degraded fallback path.
    pub fn degraded(&self) -> bool {
        self.failed_over
    }

    fn local_bytes(&self) -> DataSize {
        DataSize::from_bytes(self.keys.len() as u64 * 4)
    }

    // ---- start ----

    fn begin(&mut self, ctx: &mut Ctx) {
        // A failover restart keeps the original start instant: the cost
        // of the aborted attempt is part of the degraded run's time.
        if self.timings.started_at.is_none() {
            self.timings.started_at = Some(ctx.now());
        }
        self.streams_pending = self.p - 1;
        match self.variant {
            SortVariant::HostOnly | SortVariant::ProtocolOnly => {
                self.phase = Phase::Bucket1;
                self.phase_entered = ctx.now();
                let charge = self
                    .kernels
                    .bucket_sort_time(self.keys.len() as u64, self.local_bytes());
                ctx.self_in(charge, Bucket1Done(self.epoch));
            }
            SortVariant::InicFull | SortVariant::InicTwoPhase => {
                // Card does phase 1; hand the raw keys straight over.
                self.phase = Phase::Exchange;
                self.phase_entered = ctx.now();
                let Attachment::Inic { card, macs, .. } = &self.attachment else {
                    panic!("INIC variant without INIC attachment");
                };
                let card = *card;
                let macs = macs.clone();
                let k = self.card_recv_buckets();
                ctx.send_now(
                    card,
                    InicExpect {
                        stream: 1,
                        kind: GatherKind::BucketKeys { k },
                        sources: (0..self.p as u32).map(|s| (s, None)).collect(),
                    },
                );
                ctx.send_now(
                    card,
                    InicScatter {
                        stream: 1,
                        kind: ScatterKind::BucketKeys {
                            p: self.p,
                            splitters: self.splitters.clone(),
                        },
                        data: keys_to_bytes(&self.keys),
                        dests: macs,
                    },
                );
            }
        }
    }

    /// On-card receive bucket count: the final N on the ideal card, 16
    /// on the prototype.
    fn card_recv_buckets(&self) -> usize {
        match self.variant {
            SortVariant::InicFull => self.recv_buckets,
            SortVariant::InicTwoPhase => 16,
            SortVariant::HostOnly | SortVariant::ProtocolOnly => unreachable!(),
        }
    }

    // ---- commodity path ----

    fn on_bucket1_done(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.phase, Phase::Bucket1);
        self.timings.bucket1 += ctx.now().since(self.phase_entered);
        self.phase = Phase::Exchange;
        self.phase_entered = ctx.now();
        if self.variant == SortVariant::ProtocolOnly {
            return self.raw_exchange_via_card(ctx);
        }
        let Attachment::Tcp { nic, macs } = &self.attachment else {
            panic!("HostOnly variant without TCP attachment");
        };
        let nic = *nic;
        let macs = macs.clone();
        let buckets = self.partition_keys();
        for step in 1..self.p {
            let q = (self.rank + step) % self.p;
            // Length-prefixed key stream: the receiver learns each
            // sender's (data-dependent) total from the first 8 bytes.
            let body = keys_to_bytes(&buckets[q]);
            let mut data = (body.len() as u64).to_le_bytes().to_vec();
            data.extend_from_slice(&body);
            ctx.send_now(
                nic,
                TcpSend {
                    peer: macs[q],
                    chan: 1,
                    data,
                },
            );
        }
        // Our own bucket stays home.
        self.received_keys.push(buckets[self.rank].clone());
        self.check_exchange_complete(ctx);
    }

    /// Protocol-processor path: host-bucketed parts ride the card's
    /// lightweight protocol.
    fn raw_exchange_via_card(&mut self, ctx: &mut Ctx) {
        let Attachment::Inic {
            card, macs, mode, ..
        } = &self.attachment
        else {
            panic!("ProtocolOnly variant without INIC attachment");
        };
        debug_assert_eq!(*mode, InicMode::ProtocolProcessor);
        let card = *card;
        let macs = macs.clone();
        let buckets = self.partition_keys();
        let mut parts = vec![0usize; self.p];
        let mut data = Vec::with_capacity(self.keys.len() * 4);
        for step in 0..self.p {
            let q = (self.rank + step) % self.p;
            parts[q] = buckets[q].len() * 4;
            data.extend(keys_to_bytes(&buckets[q]));
        }
        ctx.send_now(
            card,
            InicExpect {
                stream: 1,
                kind: GatherKind::Raw,
                sources: (0..self.p as u32).map(|s| (s, None)).collect(),
            },
        );
        ctx.send_now(
            card,
            InicScatter {
                stream: 1,
                kind: ScatterKind::Raw { parts },
                data,
                dests: macs,
            },
        );
    }

    fn on_tcp_delivered(&mut self, d: TcpDelivered, ctx: &mut Ctx) {
        let src = self
            .attachment
            .macs()
            .iter()
            .position(|&m| m == d.peer)
            .expect("delivery from unknown MAC");
        let buf = self.rx.entry(src).or_default();
        buf.extend_from_slice(&d.data);
        // Completed stream? 8-byte length prefix + body.
        if buf.len() >= 8 {
            let want = u64::from_le_bytes(buf[..8].try_into().unwrap()) as usize;
            if buf.len() >= 8 + want {
                let body: Vec<u8> = buf[8..8 + want].to_vec();
                assert_eq!(
                    buf.len(),
                    8 + want,
                    "sender sent more than one stream on this channel"
                );
                self.rx.remove(&src);
                self.received_keys.push(bytes_to_keys(&body));
                self.streams_pending -= 1;
            }
        }
        self.check_exchange_complete(ctx);
    }

    fn check_exchange_complete(&mut self, ctx: &mut Ctx) {
        if self.phase != Phase::Exchange || self.streams_pending > 0 {
            return;
        }
        if matches!(self.variant, SortVariant::HostOnly) {
            self.timings.comm += ctx.now().since(self.phase_entered);
            self.begin_bucket2(ctx);
        }
    }

    /// Phase-2 host bucket pass (commodity; also the prototype's second
    /// phase, reached from the gather instead).
    fn begin_bucket2(&mut self, ctx: &mut Ctx) {
        self.phase = Phase::Bucket2;
        self.phase_entered = ctx.now();
        let n_keys: u64 = match self.variant {
            SortVariant::HostOnly => self.received_keys.iter().map(|v| v.len() as u64).sum(),
            SortVariant::InicTwoPhase | SortVariant::ProtocolOnly => {
                let (data, _) = self.card_bucket_data.as_ref().expect("gather data");
                (data.len() / 4) as u64
            }
            SortVariant::InicFull => unreachable!("ideal INIC skips phase 2"),
        };
        let working = DataSize::from_bytes(n_keys * 4);
        let charge = self.kernels.bucket_sort_time(n_keys, working);
        ctx.self_in(charge, Bucket2Done(self.epoch));
    }

    fn on_bucket2_done(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.phase, Phase::Bucket2);
        self.timings.bucket2 += ctx.now().since(self.phase_entered);
        self.begin_count(ctx);
    }

    // ---- final count sort (all variants) ----

    fn begin_count(&mut self, ctx: &mut Ctx) {
        self.phase = Phase::Count;
        self.phase_entered = ctx.now();
        // Assemble the node's keys grouped into N cache-sized buckets.
        let grouped: Vec<Vec<u32>> = match self.variant {
            SortVariant::HostOnly => {
                let all: Vec<u32> = self.received_keys.concat();
                bucket_sort_into_n(&all, self.recv_buckets)
            }
            SortVariant::InicTwoPhase | SortVariant::ProtocolOnly => {
                let (data, _bounds) = self.card_bucket_data.take().expect("gather data");
                let all = bytes_to_keys(&data);
                bucket_sort_into_n(&all, self.recv_buckets)
            }
            SortVariant::InicFull => {
                let (data, bounds) = self.card_bucket_data.take().expect("gather data");
                let keys = bytes_to_keys(&data);
                let mut out = Vec::with_capacity(bounds.len());
                let mut start = 0usize;
                for &end in &bounds {
                    out.push(keys[start / 4..end / 4].to_vec());
                    start = end;
                }
                out
            }
        };
        let n_keys: u64 = grouped.iter().map(|b| b.len() as u64).sum();
        let bucket_bytes = DataSize::from_bytes((n_keys * 4 / self.recv_buckets as u64).max(1));
        let charge = self.kernels.count_sort_time(n_keys, bucket_bytes);
        // The real sort.
        let mut sorted = Vec::with_capacity(n_keys as usize);
        for b in grouped {
            sorted.extend(count_sort(&b));
        }
        debug_assert!(is_sorted(&sorted));
        self.sorted = sorted;
        ctx.self_in(charge, CountDone(self.epoch));
    }

    fn on_count_done(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.phase, Phase::Count);
        self.timings.count += ctx.now().since(self.phase_entered);
        self.phase = Phase::Done;
        self.timings.done_at = Some(ctx.now());
        // Every key we hold belongs to this rank.
        debug_assert!(match &self.splitters {
            Some(sp) => self
                .sorted
                .iter()
                .all(|&k| destination_by_splitters(k, sp) == self.rank),
            None =>
                self.p == 1
                    || self
                        .sorted
                        .iter()
                        .all(|&k| destination_rank(k, self.p) == self.rank),
        });
    }

    // ---- INIC path ----

    /// The whole cluster degrades together: drop the dead card (even a
    /// healthy one — peers can no longer reach every rank through the
    /// INIC path) and restart from the retained input keys over the
    /// commodity fallback NIC.
    fn on_card_failed(&mut self, ctx: &mut Ctx) {
        if self.failed_over {
            return; // a second card death changes nothing
        }
        let (nic, macs) = match &self.attachment {
            Attachment::Inic {
                fallback: Some((nic, macs)),
                ..
            } => (*nic, macs.clone()),
            _ => panic!("{}: card failure without a wired fallback path", self.label),
        };
        ctx.stats().counter(&self.label, "card_failovers").inc();
        self.failed_over = true;
        self.epoch += 1;
        self.attachment = Attachment::Tcp { nic, macs };
        self.variant = SortVariant::HostOnly;
        // Discard every trace of the aborted exchange. The input keys
        // were never mutated, so the restart recomputes from scratch;
        // only the original start instant survives into the timings.
        self.rx.clear();
        self.received_keys.clear();
        self.card_bucket_data = None;
        self.sorted.clear();
        let started = self.timings.started_at;
        self.timings = SortTimings::default();
        self.timings.started_at = started;
        self.begin(ctx);
    }

    fn on_gather(&mut self, g: InicGatherComplete, ctx: &mut Ctx) {
        assert_eq!(
            self.phase,
            Phase::Exchange,
            "{}: gather out of phase",
            self.label
        );
        self.timings.comm += ctx.now().since(self.phase_entered);
        let bounds = g.bucket_bounds.expect("bucket/raw gather carries bounds");
        self.card_bucket_data = Some((g.data, bounds));
        match self.variant {
            SortVariant::InicFull => self.begin_count(ctx),
            SortVariant::InicTwoPhase | SortVariant::ProtocolOnly => self.begin_bucket2(ctx),
            SortVariant::HostOnly => unreachable!(),
        }
    }
}

/// Group keys into `n` buckets by top bits, preserving order (the
/// host-side phase-2 pass, shared by the commodity and prototype paths).
fn bucket_sort_into_n(keys: &[u32], n: usize) -> Vec<Vec<u32>> {
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &k in keys {
        buckets[bucket_index(k, n)].push(k);
    }
    buckets
}

impl Component for SortDriver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            match (&self.attachment, self.variant) {
                (Attachment::Inic { card, .. }, SortVariant::ProtocolOnly) => {
                    let card = *card;
                    ctx.send_now(
                        card,
                        InicConfigure {
                            bitstream: Bitstream::protocol_only(),
                        },
                    );
                }
                (Attachment::Inic { card, .. }, v) => {
                    assert_ne!(v, SortVariant::HostOnly);
                    let card = *card;
                    let send_k = self.p.next_power_of_two().max(2);
                    let recv_k = self.card_recv_buckets();
                    ctx.send_now(
                        card,
                        InicConfigure {
                            bitstream: Bitstream::int_sort(send_k.max(16), recv_k),
                        },
                    );
                }
                (Attachment::Tcp { .. }, SortVariant::HostOnly) => self.begin(ctx),
                _ => panic!("{}: attachment/variant mismatch", self.label),
            }
            return;
        }
        if ev.downcast_ref::<super::CardFailed>().is_some() {
            return self.on_card_failed(ctx);
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Ok(cfg) => {
                if self.failed_over {
                    return; // the card answered just before it died
                }
                cfg.result
                    .unwrap_or_else(|e| panic!("{}: sort bitstream rejected: {e}", self.label));
                self.begin(ctx);
                return;
            }
            Err(ev) => ev,
        };
        if let Some(Bucket1Done(epoch)) = ev.downcast_ref::<Bucket1Done>() {
            if *epoch == self.epoch {
                return self.on_bucket1_done(ctx);
            }
            return; // compute timer from an abandoned attempt
        }
        if let Some(Bucket2Done(epoch)) = ev.downcast_ref::<Bucket2Done>() {
            if *epoch == self.epoch {
                return self.on_bucket2_done(ctx);
            }
            return;
        }
        if let Some(CountDone(epoch)) = ev.downcast_ref::<CountDone>() {
            if *epoch == self.epoch {
                return self.on_count_done(ctx);
            }
            return;
        }
        let ev = match ev.downcast::<TcpDelivered>() {
            Ok(d) => return self.on_tcp_delivered(*d, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Ok(g) => {
                if self.failed_over {
                    return; // stale card traffic from before the failure
                }
                return self.on_gather(*g, ctx);
            }
            Err(ev) => ev,
        };
        if ev.downcast_ref::<InicScatterDone>().is_some() {
            return;
        }
        panic!("{}: unknown event", self.label);
    }

    fn name(&self) -> &str {
        &self.label
    }
}
