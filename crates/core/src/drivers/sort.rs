//! The per-node integer-sort driver — Section 3.2 on every network
//! technology.
//!
//! Pipeline: bucket the local keys by destination rank, exchange
//! (bucket `i` goes to rank `i`), bucket the received keys into
//! cache-sized buckets, count-sort every bucket. Where each step runs
//! depends on the technology:
//!
//! * **commodity NIC** (Fig. 3(a)): both bucket passes on the host CPU;
//!   TCP carries length-prefixed key streams.
//! * **ideal INIC** (Fig. 3(b)): both bucket passes in the card
//!   datapath; the host only count-sorts cache-resident buckets.
//! * **prototype INIC** (Fig. 7): the 4085XLA only fits a 16-bucket
//!   sorter, so the card delivers 16 coarse buckets and the host runs a
//!   second bucket pass before count-sorting — "surprisingly, this can
//!   provide higher performance than having the host sort directly into
//!   16 × N buckets".
//!
//! Fault handling mirrors [`FftDriver`](super::fft::FftDriver): stalled
//! hosts defer every event, and under rank-local recovery a dead rank
//! degrades to [`SortVariant::HostOnly`] over its fallback NIC while
//! healthy ranks keep the card, carrying the dead ranks' buckets as
//! length-prefixed TCP side streams next to the card exchange. The
//! post-exchange state can be checkpointed so a later failure resumes
//! from the exchange instead of re-running it.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use acc_algos::sort::{
    bucket_index, bucket_sort, bytes_to_keys, count_sort, destination_by_splitters,
    destination_rank, is_sorted, keys_to_bytes,
};
use acc_fpga::{
    Bitstream, GatherKind, InicConfigure, InicConfigured, InicExpect, InicGatherComplete, InicMode,
    InicRecover, InicScatter, InicScatterDone, ScatterKind,
};
use acc_host::HostKernels;
use acc_proto::{TcpDelivered, TcpSend};
use acc_sim::{Component, Ctx, DataSize, SimDuration, SimTime};

use super::{
    recv_buckets_for, Attachment, CardFailed, Deferred, FaultCtl, RecoveryPolicy, RecoveryReport,
    ResumeAt, RECOVERY_LATENCY,
};

/// How the receive-side bucketing is split between card and host.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SortVariant {
    /// Commodity NIC: host does everything.
    HostOnly,
    /// Ideal INIC: card buckets straight into the final `N` buckets.
    InicFull,
    /// Prototype INIC: card buckets into 16; host re-buckets into `N`.
    InicTwoPhase,
    /// INIC as a pure protocol processor: host does both bucket passes,
    /// the card only carries the lightweight protocol (mode ablation).
    ProtocolOnly,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Init,
    /// Host phase-1 bucket charge running (commodity only).
    Bucket1,
    /// Keys in flight.
    Exchange,
    /// Host phase-2 bucket charge running.
    Bucket2,
    /// Count-sort charge running.
    Count,
    Done,
}

/// Self events marking the end of charged compute. Each carries the
/// epoch it was scheduled in: a card failover bumps the epoch and
/// restarts the state machine, and compute timers from the abandoned
/// attempt must not fire into the new one.
struct Bucket1Done(u64);
struct Bucket2Done(u64);
struct CountDone(u64);

/// Snapshot of the post-exchange state, captured under
/// [`RecoveryPolicy::Checkpointed`] so a later card failure resumes
/// from the exchange instead of re-running it.
#[derive(Clone)]
struct ExchangeCkpt {
    /// Card gather result (INIC variants).
    card: Option<(Vec<u8>, Vec<usize>)>,
    /// Keys received over TCP (commodity path).
    received: Vec<Vec<u32>>,
    /// Keys received over the mixed-technology TCP side streams.
    tcp: Vec<Vec<u32>>,
    /// The variant the exchange ran under — the data layout to resume
    /// with, even if this rank degraded afterwards (the remaining
    /// phases are pure host compute).
    variant: SortVariant,
}

/// Timing decomposition of one node's run.
#[derive(Clone, Debug, Default)]
pub struct SortTimings {
    /// Host phase-1 bucket time (zero on INIC paths).
    pub bucket1: SimDuration,
    /// Exchange wall time (first send to all-received).
    pub comm: SimDuration,
    /// Host phase-2 bucket time (zero on the ideal INIC path).
    pub bucket2: SimDuration,
    /// Final count-sort time.
    pub count: SimDuration,
    /// Absolute completion instant.
    pub done_at: Option<SimTime>,
    /// Absolute start instant (post-configuration).
    pub started_at: Option<SimTime>,
}

/// The per-node integer-sort driver.
pub struct SortDriver {
    label: String,
    rank: usize,
    p: usize,
    variant: SortVariant,
    attachment: Attachment,
    kernels: HostKernels,
    keys: Vec<u32>,
    /// Optional range splitters for the destination partitioning (the
    /// pre-sort sampling extension for skewed keys); `None` = the
    /// paper's top-bits partitioning.
    splitters: Option<Vec<u32>>,
    /// Final cache-sized bucket count `N`.
    recv_buckets: usize,
    phase: Phase,
    phase_entered: SimTime,
    /// TCP receive reassembly: raw bytes per (src rank, channel). The
    /// channel namespaces the exchange by epoch, so bytes from an
    /// aborted attempt never leak into the restarted one.
    rx: BTreeMap<(usize, u16), Vec<u8>>,
    /// Commodity: keys received (parsed once each stream's length-prefix
    /// is satisfied).
    received_keys: Vec<Vec<u32>>,
    streams_pending: usize,
    /// Mixed-technology exchange: keys from degraded peers, carried over
    /// TCP next to the card exchange.
    mixed_tcp_keys: Vec<Vec<u32>>,
    /// Mixed-technology exchange: TCP side streams still outstanding.
    tcp_pending: usize,
    /// INIC gather result (16 or N card buckets, concatenated).
    card_bucket_data: Option<(Vec<u8>, Vec<usize>)>,
    sorted: Vec<u32>,
    /// Restart epoch; bumped on card failover so stale self events die.
    epoch: u64,
    /// Whether this driver abandoned its INIC card and restarted over
    /// the commodity fallback path.
    failed_over: bool,
    /// Fault-handling configuration (default when no plan is wired).
    fault_ctl: FaultCtl,
    /// Ranks whose cards died (rank-local recovery only).
    dead: BTreeSet<usize>,
    /// Post-exchange checkpoint, when armed and captured.
    ckpt1: Option<ExchangeCkpt>,
    /// Parked between reporting a failure and the coordinator's resume.
    paused: bool,
    /// Whether the card finished loading its bitstream. A failover that
    /// lands inside the configuration window must defer its resume
    /// until the card is usable.
    configured: bool,
    /// A [`ResumeAt`] verdict received before `configured`; replayed
    /// when the bitstream lands.
    pending_resume: Option<ResumeAt>,
    /// The checkpoint phase the last resume restarted from.
    resumed_from: Option<u32>,
    /// Whether this driver already counted itself in `drivers_done`.
    reported_done: bool,
    /// Timing decomposition.
    pub timings: SortTimings,
}

impl SortDriver {
    /// Build a driver holding this rank's initial keys.
    pub fn new(
        rank: usize,
        p: usize,
        keys: Vec<u32>,
        variant: SortVariant,
        attachment: Attachment,
        kernels: HostKernels,
    ) -> SortDriver {
        let recv_buckets = recv_buckets_for(keys.len() as u64);
        SortDriver {
            label: format!("sort-driver{rank}"),
            rank,
            p,
            variant,
            attachment,
            kernels,
            keys,
            splitters: None,
            recv_buckets,
            phase: Phase::Init,
            phase_entered: SimTime::ZERO,
            rx: BTreeMap::new(),
            received_keys: Vec::new(),
            streams_pending: 0,
            mixed_tcp_keys: Vec::new(),
            tcp_pending: 0,
            card_bucket_data: None,
            sorted: Vec::new(),
            epoch: 0,
            failed_over: false,
            fault_ctl: FaultCtl::default(),
            dead: BTreeSet::new(),
            ckpt1: None,
            paused: false,
            configured: false,
            pending_resume: None,
            resumed_from: None,
            reported_done: false,
            timings: SortTimings::default(),
        }
    }

    /// Use sampled range splitters instead of top-bits partitioning
    /// (builder style; must be the same table on every rank).
    #[must_use]
    pub fn with_splitters(mut self, splitters: Vec<u32>) -> SortDriver {
        assert_eq!(splitters.len() + 1, self.p, "need P-1 splitters");
        self.splitters = Some(splitters);
        self
    }

    /// Attach fault-handling configuration (builder style).
    #[must_use]
    pub fn with_fault_ctl(mut self, ctl: FaultCtl) -> SortDriver {
        self.fault_ctl = ctl;
        self
    }

    /// Distribute this node's keys to their destination ranks using the
    /// active partitioning (top bits or splitters).
    fn partition_keys(&self) -> Vec<Vec<u32>> {
        match &self.splitters {
            Some(sp) => {
                let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.p];
                for &k in &self.keys {
                    buckets[destination_by_splitters(k, sp)].push(k);
                }
                buckets
            }
            None if self.p == 1 => vec![self.keys.clone()],
            None => bucket_sort(&self.keys, self.p),
        }
    }

    /// This rank's sorted key range, available when done.
    pub fn result(&self) -> &[u32] {
        assert_eq!(self.phase, Phase::Done, "driver not finished");
        &self.sorted
    }

    /// Whether the run completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether the driver completed over the degraded fallback path.
    pub fn degraded(&self) -> bool {
        self.failed_over
    }

    /// The checkpoint phase the last failover resumed from, if any.
    pub fn resumed_from(&self) -> Option<u32> {
        self.resumed_from
    }

    /// Phase name for liveness attribution.
    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Init => "init",
            Phase::Bucket1 => "bucket1",
            Phase::Exchange => "exchange",
            Phase::Bucket2 => "bucket2",
            Phase::Count => "count",
            Phase::Done => "done",
        }
    }

    /// Phase snapshot for the liveness layer.
    pub fn progress(&self) -> super::DriverProgress {
        super::DriverProgress {
            rank: self.rank,
            phase: self.phase_name(),
            entered: self.phase_entered,
            paused: self.paused,
            done: self.is_done(),
        }
    }

    fn local_bytes(&self) -> DataSize {
        DataSize::from_bytes(self.keys.len() as u64 * 4)
    }

    /// INIC stream id for the exchange, namespaced by epoch so a
    /// restarted exchange never collides with the aborted one's demux
    /// state (epoch 0 keeps the historical id 1).
    fn stream(&self) -> u32 {
        (self.epoch as u32) * 8 + 1
    }

    /// TCP channel for the exchange, namespaced like [`stream`].
    fn chan(&self) -> u16 {
        (self.epoch as u16) * 4 + 1
    }

    /// Whether phase checkpoints are being captured.
    fn ckpt_armed(&self) -> bool {
        self.fault_ctl.coordinator.is_some()
            && self.fault_ctl.policy == RecoveryPolicy::Checkpointed
    }

    /// Highest phase this rank could resume from (0 = start, 1 = after
    /// the exchange, 2 = finished).
    fn completed_phase(&self) -> u32 {
        if self.phase == Phase::Done {
            return 2;
        }
        if self.ckpt1.is_some() {
            return 1;
        }
        0
    }

    /// Capture the post-exchange checkpoint (called at exchange
    /// completion, before any phase consumes the buffers).
    fn capture_ckpt(&mut self) {
        if !self.ckpt_armed() {
            return;
        }
        self.ckpt1 = Some(ExchangeCkpt {
            card: self.card_bucket_data.clone(),
            received: self.received_keys.clone(),
            tcp: self.mixed_tcp_keys.clone(),
            variant: self.variant,
        });
    }

    // ---- start ----

    fn begin(&mut self, ctx: &mut Ctx) {
        // A failover restart keeps the original start instant: the cost
        // of the aborted attempt is part of the degraded run's time.
        if self.timings.started_at.is_none() {
            self.timings.started_at = Some(ctx.now());
        }
        self.streams_pending = self.p - 1;
        match self.variant {
            SortVariant::HostOnly | SortVariant::ProtocolOnly => {
                self.phase = Phase::Bucket1;
                self.phase_entered = ctx.now();
                let charge = self
                    .kernels
                    .bucket_sort_time(self.keys.len() as u64, self.local_bytes());
                ctx.self_in(charge, Bucket1Done(self.epoch));
            }
            SortVariant::InicFull | SortVariant::InicTwoPhase => {
                // Card does phase 1; hand the raw keys straight over.
                self.phase = Phase::Exchange;
                self.phase_entered = ctx.now();
                let Attachment::Inic {
                    card,
                    macs,
                    fallback,
                    ..
                } = &self.attachment
                else {
                    panic!("INIC variant without INIC attachment");
                };
                let card = *card;
                let macs = macs.clone();
                let fallback = fallback.clone();
                let k = self.card_recv_buckets();
                let dead = self.dead.clone();
                let stream = self.stream();
                ctx.send_now(
                    card,
                    InicExpect {
                        stream,
                        kind: GatherKind::BucketKeys { k },
                        sources: (0..self.p as u32)
                            .filter(|s| !dead.contains(&(*s as usize)))
                            .map(|s| (s, None))
                            .collect(),
                    },
                );
                ctx.send_now(
                    card,
                    InicScatter {
                        stream,
                        kind: ScatterKind::BucketKeys {
                            p: self.p,
                            splitters: self.splitters.clone(),
                        },
                        data: keys_to_bytes(&self.keys),
                        dests: macs,
                    },
                );
                // Mixed-technology side streams: the card drops chunks
                // destined to dead peers, so the host carries those
                // buckets over the fallback TCP path instead.
                self.tcp_pending = dead.len();
                if !dead.is_empty() {
                    let (fb_nic, fb_macs) =
                        fallback.expect("rank-local degradation needs a fallback path");
                    let chan = self.chan();
                    let buckets = self.partition_keys();
                    for &d in &dead {
                        let body = keys_to_bytes(&buckets[d]);
                        let mut data = (body.len() as u64).to_le_bytes().to_vec();
                        data.extend_from_slice(&body);
                        ctx.send_now(
                            fb_nic,
                            TcpSend {
                                peer: fb_macs[d],
                                chan,
                                data,
                            },
                        );
                    }
                    // Streams the degraded peers sent while this rank
                    // was still paused are already buffered; consume
                    // them now — no further delivery will re-trigger
                    // the parse.
                    for &d in &dead {
                        if let Some(keys) = self.take_complete_stream(d, chan) {
                            self.mixed_tcp_keys.push(keys);
                            self.tcp_pending -= 1;
                        }
                    }
                }
            }
        }
    }

    /// On-card receive bucket count: the final N on the ideal card, 16
    /// on the prototype.
    fn card_recv_buckets(&self) -> usize {
        match self.variant {
            SortVariant::InicFull => self.recv_buckets,
            SortVariant::InicTwoPhase => 16,
            SortVariant::HostOnly | SortVariant::ProtocolOnly => unreachable!(),
        }
    }

    // ---- commodity path ----

    fn on_bucket1_done(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.phase, Phase::Bucket1);
        self.timings.bucket1 += ctx.now().since(self.phase_entered);
        self.phase = Phase::Exchange;
        self.phase_entered = ctx.now();
        if self.variant == SortVariant::ProtocolOnly {
            return self.raw_exchange_via_card(ctx);
        }
        let Attachment::Tcp { nic, macs } = &self.attachment else {
            panic!("HostOnly variant without TCP attachment");
        };
        let nic = *nic;
        let macs = macs.clone();
        let chan = self.chan();
        let buckets = self.partition_keys();
        for step in 1..self.p {
            let q = (self.rank + step) % self.p;
            // Length-prefixed key stream: the receiver learns each
            // sender's (data-dependent) total from the first 8 bytes.
            let body = keys_to_bytes(&buckets[q]);
            let mut data = (body.len() as u64).to_le_bytes().to_vec();
            data.extend_from_slice(&body);
            ctx.send_now(
                nic,
                TcpSend {
                    peer: macs[q],
                    chan,
                    data,
                },
            );
        }
        // Our own bucket stays home.
        self.received_keys.push(buckets[self.rank].clone());
        self.check_exchange_complete(ctx);
    }

    /// Protocol-processor path: host-bucketed parts ride the card's
    /// lightweight protocol.
    fn raw_exchange_via_card(&mut self, ctx: &mut Ctx) {
        let Attachment::Inic {
            card, macs, mode, ..
        } = &self.attachment
        else {
            panic!("ProtocolOnly variant without INIC attachment");
        };
        debug_assert_eq!(*mode, InicMode::ProtocolProcessor);
        let card = *card;
        let macs = macs.clone();
        let stream = self.stream();
        let buckets = self.partition_keys();
        let mut parts = vec![0usize; self.p];
        let mut data = Vec::with_capacity(self.keys.len() * 4);
        for step in 0..self.p {
            let q = (self.rank + step) % self.p;
            parts[q] = buckets[q].len() * 4;
            data.extend(keys_to_bytes(&buckets[q]));
        }
        ctx.send_now(
            card,
            InicExpect {
                stream,
                kind: GatherKind::Raw,
                sources: (0..self.p as u32).map(|s| (s, None)).collect(),
            },
        );
        ctx.send_now(
            card,
            InicScatter {
                stream,
                kind: ScatterKind::Raw { parts },
                data,
                dests: macs,
            },
        );
    }

    /// Pop the buffered stream from `(src, chan)` if it is complete
    /// (8-byte length prefix + body), decoded to keys.
    fn take_complete_stream(&mut self, src: usize, chan: u16) -> Option<Vec<u32>> {
        let buf = self.rx.get(&(src, chan))?;
        if buf.len() < 8 {
            return None;
        }
        let want = usize::try_from(u64::from_le_bytes(
            buf[..8]
                .try_into()
                .expect("sort stream length prefix is 8 bytes"),
        ))
        .expect("sort stream length fits usize");
        if buf.len() < 8 + want {
            return None;
        }
        assert_eq!(
            buf.len(),
            8 + want,
            "sender sent more than one stream on this channel"
        );
        let keys = bytes_to_keys(&buf[8..]);
        self.rx.remove(&(src, chan));
        Some(keys)
    }

    fn on_tcp_delivered(&mut self, d: TcpDelivered, ctx: &mut Ctx) {
        let src = self
            .attachment
            .resolve_src(d.peer)
            .expect("delivery from unknown MAC");
        let chan_now = self.chan();
        let buf = self.rx.entry((src, d.chan)).or_default();
        buf.extend_from_slice(&d.data);
        if self.paused || d.chan != chan_now {
            // Stale epoch (the exchange it belonged to was abandoned) or
            // a paused host: leave it buffered, it is never consumed.
            return;
        }
        let Some(keys) = self.take_complete_stream(src, d.chan) else {
            return; // stream still in flight
        };
        if matches!(self.attachment, Attachment::Inic { .. }) {
            // Mixed-technology side stream from a degraded peer.
            assert!(self.tcp_pending > 0, "unexpected TCP stream on INIC rank");
            self.mixed_tcp_keys.push(keys);
            self.tcp_pending -= 1;
            self.try_finish_inic_exchange(ctx);
        } else {
            self.received_keys.push(keys);
            self.streams_pending -= 1;
            self.check_exchange_complete(ctx);
        }
    }

    fn check_exchange_complete(&mut self, ctx: &mut Ctx) {
        if self.paused || self.phase != Phase::Exchange || self.streams_pending > 0 {
            return;
        }
        if matches!(self.variant, SortVariant::HostOnly) {
            self.timings.comm += ctx.now().since(self.phase_entered);
            self.capture_ckpt();
            self.begin_bucket2(ctx);
        }
    }

    /// Phase-2 host bucket pass (commodity; also the prototype's second
    /// phase, reached from the gather instead).
    fn begin_bucket2(&mut self, ctx: &mut Ctx) {
        self.phase = Phase::Bucket2;
        self.phase_entered = ctx.now();
        let n_keys: u64 = match self.variant {
            SortVariant::HostOnly => self.received_keys.iter().map(|v| v.len() as u64).sum(),
            SortVariant::InicTwoPhase | SortVariant::ProtocolOnly => {
                let (data, _) = self.card_bucket_data.as_ref().expect("gather data");
                (data.len() / 4) as u64
                    + self
                        .mixed_tcp_keys
                        .iter()
                        .map(|v| v.len() as u64)
                        .sum::<u64>()
            }
            SortVariant::InicFull => unreachable!("ideal INIC skips phase 2"),
        };
        let working = DataSize::from_bytes(n_keys * 4);
        let charge = self.kernels.bucket_sort_time(n_keys, working);
        ctx.self_in(charge, Bucket2Done(self.epoch));
    }

    fn on_bucket2_done(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.phase, Phase::Bucket2);
        self.timings.bucket2 += ctx.now().since(self.phase_entered);
        self.begin_count(ctx);
    }

    // ---- final count sort (all variants) ----

    fn begin_count(&mut self, ctx: &mut Ctx) {
        self.phase = Phase::Count;
        self.phase_entered = ctx.now();
        // Assemble the node's keys grouped into N cache-sized buckets.
        let grouped: Vec<Vec<u32>> = match self.variant {
            SortVariant::HostOnly => {
                let all: Vec<u32> = self.received_keys.concat();
                bucket_sort_into_n(&all, self.recv_buckets)
            }
            SortVariant::InicTwoPhase | SortVariant::ProtocolOnly => {
                let (data, _bounds) = self.card_bucket_data.take().expect("gather data");
                let mut all = bytes_to_keys(&data);
                for keys in &self.mixed_tcp_keys {
                    all.extend_from_slice(keys);
                }
                bucket_sort_into_n(&all, self.recv_buckets)
            }
            SortVariant::InicFull => {
                let (data, bounds) = self.card_bucket_data.take().expect("gather data");
                let keys = bytes_to_keys(&data);
                let mut out = Vec::with_capacity(bounds.len());
                let mut start = 0usize;
                for &end in &bounds {
                    out.push(keys[start / 4..end / 4].to_vec());
                    start = end;
                }
                // Mixed-technology keys arrive unbucketed; sprinkle them
                // into the card's buckets (order within a bucket is
                // irrelevant — count-sort sorts each fully).
                for keys in &self.mixed_tcp_keys {
                    for &k in keys {
                        out[bucket_index(k, self.recv_buckets)].push(k);
                    }
                }
                out
            }
        };
        let n_keys: u64 = grouped.iter().map(|b| b.len() as u64).sum();
        let bucket_bytes = DataSize::from_bytes((n_keys * 4 / self.recv_buckets as u64).max(1));
        let charge = self.kernels.count_sort_time(n_keys, bucket_bytes);
        // The real sort.
        let mut sorted = Vec::with_capacity(n_keys as usize);
        for b in grouped {
            sorted.extend(count_sort(&b));
        }
        debug_assert!(is_sorted(&sorted));
        self.sorted = sorted;
        ctx.self_in(charge, CountDone(self.epoch));
    }

    fn on_count_done(&mut self, ctx: &mut Ctx) {
        assert_eq!(self.phase, Phase::Count);
        self.timings.count += ctx.now().since(self.phase_entered);
        self.phase = Phase::Done;
        self.timings.done_at = Some(ctx.now());
        if !self.reported_done {
            self.reported_done = true;
            ctx.stats().counter("cluster", "drivers_done").inc();
        }
        // Every key we hold belongs to this rank.
        debug_assert!(match &self.splitters {
            Some(sp) => self
                .sorted
                .iter()
                .all(|&k| destination_by_splitters(k, sp) == self.rank),
            None =>
                self.p == 1
                    || self
                        .sorted
                        .iter()
                        .all(|&k| destination_rank(k, self.p) == self.rank),
        });
    }

    // ---- INIC path ----

    fn on_card_failed(&mut self, node: u32, ctx: &mut Ctx) {
        match self.fault_ctl.coordinator {
            None => self.full_restart_failover(ctx),
            Some(coord) => self.rank_local_failover(node, coord, ctx),
        }
    }

    /// The whole cluster degrades together (PR 1 behaviour, still used
    /// under [`RecoveryPolicy::FullRestart`] and for the
    /// protocol-processor mode): drop the dead card — even a healthy
    /// one, peers can no longer reach every rank through the INIC path —
    /// and restart from the retained input keys over the commodity
    /// fallback NIC.
    fn full_restart_failover(&mut self, ctx: &mut Ctx) {
        if self.failed_over {
            return; // a second card death changes nothing
        }
        let (nic, macs) = match &self.attachment {
            Attachment::Inic {
                fallback: Some((nic, macs)),
                ..
            } => (*nic, macs.clone()),
            _ => panic!("{}: card failure without a wired fallback path", self.label),
        };
        ctx.stats().counter(&self.label, "card_failovers").inc();
        self.failed_over = true;
        self.epoch += 1;
        self.attachment = Attachment::Tcp { nic, macs };
        self.variant = SortVariant::HostOnly;
        // Discard every trace of the aborted exchange. The input keys
        // were never mutated, so the restart recomputes from scratch;
        // only the original start instant survives into the timings.
        self.rx.clear();
        self.received_keys.clear();
        self.card_bucket_data = None;
        self.sorted.clear();
        let started = self.timings.started_at;
        self.timings = SortTimings::default();
        self.timings.started_at = started;
        self.begin(ctx);
    }

    /// Rank-local degradation: only the dead rank abandons its card
    /// (degrading to [`SortVariant::HostOnly`]); every rank pauses,
    /// healthy ranks purge the dead peer from their cards, and all
    /// report their highest completed checkpoint to the coordinator.
    fn rank_local_failover(&mut self, node: u32, coord: acc_sim::ComponentId, ctx: &mut Ctx) {
        let node_idx = node as usize;
        if !self.dead.insert(node_idx) {
            return; // duplicate death notice
        }
        // The stream to abort is the pre-bump one: that is what the
        // card's demux and retransmit state still reference.
        let abort_stream = if matches!(self.attachment, Attachment::Inic { .. })
            && self.phase == Phase::Exchange
        {
            Some(self.stream())
        } else {
            None
        };
        self.epoch += 1;
        self.paused = true;
        if self.rank == node_idx {
            let (nic, macs) = match &self.attachment {
                Attachment::Inic {
                    fallback: Some((nic, macs)),
                    ..
                } => (*nic, macs.clone()),
                _ => panic!("{}: card failure without a wired fallback path", self.label),
            };
            ctx.stats().counter(&self.label, "card_failovers").inc();
            self.failed_over = true;
            self.attachment = Attachment::Tcp { nic, macs };
            self.variant = SortVariant::HostOnly;
        } else if let Attachment::Inic { card, macs, .. } = &self.attachment {
            let dead_mac = macs[node_idx];
            ctx.send_now(
                *card,
                InicRecover {
                    dead: dead_mac,
                    abort_stream,
                },
            );
        }
        ctx.send_in(
            RECOVERY_LATENCY,
            coord,
            RecoveryReport {
                rank: self.rank as u32,
                round: self.epoch,
                phase: self.completed_phase(),
            },
        );
    }

    /// Coordinator verdict: restore the agreed checkpoint and resume.
    fn on_resume_at(&mut self, r: ResumeAt, ctx: &mut Ctx) {
        if r.round != self.epoch {
            return; // a newer failure superseded this round
        }
        if !self.configured && matches!(self.attachment, Attachment::Inic { .. }) {
            // The failure landed inside the card's configuration
            // window. The exchange needs a usable card, so the rank
            // stays paused (buffering whatever arrives) until the
            // bitstream lands, then replays this verdict.
            self.pending_resume = Some(r);
            return;
        }
        self.paused = false;
        self.resumed_from = Some(r.phase);
        ctx.stats().counter(&self.label, "phase_resumes").inc();
        if r.phase >= 2 {
            return; // every rank had already finished
        }
        self.card_bucket_data = None;
        self.sorted.clear();
        match r.phase {
            0 => {
                self.received_keys.clear();
                self.mixed_tcp_keys.clear();
                self.tcp_pending = 0;
                if self.failed_over {
                    self.variant = SortVariant::HostOnly;
                }
                self.begin(ctx);
            }
            1 => {
                let ck = self
                    .ckpt1
                    .clone()
                    .expect("resume phase 1 without its checkpoint");
                self.card_bucket_data = ck.card;
                self.received_keys = ck.received;
                self.mixed_tcp_keys = ck.tcp;
                // Resume under the snapshot's variant: it names the data
                // layout, and the remaining phases are pure host compute
                // even if this rank has since lost its card.
                self.variant = ck.variant;
                match self.variant {
                    SortVariant::InicFull => self.begin_count(ctx),
                    _ => self.begin_bucket2(ctx),
                }
            }
            _ => unreachable!(),
        }
    }

    /// Card gather stored; finish the exchange once the mixed-technology
    /// TCP side streams (if any) are also in.
    fn try_finish_inic_exchange(&mut self, ctx: &mut Ctx) {
        if self.paused || self.phase != Phase::Exchange {
            return;
        }
        if self.card_bucket_data.is_none() || self.tcp_pending > 0 {
            return;
        }
        self.timings.comm += ctx.now().since(self.phase_entered);
        self.capture_ckpt();
        match self.variant {
            SortVariant::InicFull => self.begin_count(ctx),
            SortVariant::InicTwoPhase | SortVariant::ProtocolOnly => self.begin_bucket2(ctx),
            SortVariant::HostOnly => unreachable!(),
        }
    }

    fn on_gather(&mut self, g: InicGatherComplete, ctx: &mut Ctx) {
        if self.paused || self.phase != Phase::Exchange || g.stream != self.stream() {
            return; // gather of an abandoned exchange
        }
        let bounds = g.bucket_bounds.expect("bucket/raw gather carries bounds");
        self.card_bucket_data = Some((g.data, bounds));
        self.try_finish_inic_exchange(ctx);
    }
}

/// Group keys into `n` buckets by top bits, preserving order (the
/// host-side phase-2 pass, shared by the commodity and prototype paths).
fn bucket_sort_into_n(keys: &[u32], n: usize) -> Vec<Vec<u32>> {
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &k in keys {
        buckets[bucket_index(k, n)].push(k);
    }
    buckets
}

impl Component for SortDriver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        // Unwrap an event this host already deferred once.
        let ev = match ev.downcast::<Deferred>() {
            Ok(d) => d.0,
            Err(ev) => ev,
        };
        // A stalled host services nothing until the window ends.
        if let Some(release) = self.fault_ctl.stalls.deferral(ctx.now()) {
            ctx.stats().counter(&self.label, "stall_deferrals").inc();
            ctx.self_in(release.since(ctx.now()), Deferred(ev));
            return;
        }
        if ev.downcast_ref::<()>().is_some() {
            match (&self.attachment, self.variant) {
                (Attachment::Inic { card, .. }, SortVariant::ProtocolOnly) => {
                    let card = *card;
                    ctx.send_now(
                        card,
                        InicConfigure {
                            bitstream: Bitstream::protocol_only(),
                        },
                    );
                }
                (Attachment::Inic { card, .. }, v) => {
                    assert_ne!(v, SortVariant::HostOnly);
                    let card = *card;
                    let send_k = self.p.next_power_of_two().max(2);
                    let recv_k = self.card_recv_buckets();
                    ctx.send_now(
                        card,
                        InicConfigure {
                            bitstream: Bitstream::int_sort(send_k.max(16), recv_k),
                        },
                    );
                }
                (Attachment::Tcp { .. }, SortVariant::HostOnly) => self.begin(ctx),
                _ => panic!("{}: attachment/variant mismatch", self.label),
            }
            return;
        }
        if let Some(cf) = ev.downcast_ref::<CardFailed>() {
            return self.on_card_failed(cf.node, ctx);
        }
        if let Some(r) = ev.downcast_ref::<ResumeAt>() {
            return self.on_resume_at(*r, ctx);
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Ok(cfg) => {
                if self.failed_over {
                    return; // the card answered just before it died
                }
                cfg.result
                    .unwrap_or_else(|e| panic!("{}: sort bitstream rejected: {e}", self.label));
                self.configured = true;
                if let Some(r) = self.pending_resume.take() {
                    // A failover interrupted the configuration; run
                    // the deferred resume instead of a fresh start.
                    self.on_resume_at(r, ctx);
                    return;
                }
                self.begin(ctx);
                return;
            }
            Err(ev) => ev,
        };
        if let Some(Bucket1Done(epoch)) = ev.downcast_ref::<Bucket1Done>() {
            if *epoch == self.epoch {
                return self.on_bucket1_done(ctx);
            }
            return; // compute timer from an abandoned attempt
        }
        if let Some(Bucket2Done(epoch)) = ev.downcast_ref::<Bucket2Done>() {
            if *epoch == self.epoch {
                return self.on_bucket2_done(ctx);
            }
            return;
        }
        if let Some(CountDone(epoch)) = ev.downcast_ref::<CountDone>() {
            if *epoch == self.epoch {
                return self.on_count_done(ctx);
            }
            return;
        }
        let ev = match ev.downcast::<TcpDelivered>() {
            Ok(d) => return self.on_tcp_delivered(*d, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Ok(g) => {
                if self.failed_over {
                    return; // stale card traffic from before the failure
                }
                return self.on_gather(*g, ctx);
            }
            Err(ev) => ev,
        };
        if ev.downcast_ref::<InicScatterDone>().is_some() {
            return;
        }
        panic!("{}: unknown event", self.label);
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        if self.is_done() {
            return None;
        }
        Some(format!(
            "rank {} in {} since {} (epoch {}, {} card streams + {} tcp streams pending{})",
            self.rank,
            self.phase_name(),
            self.phase_entered,
            self.epoch,
            self.streams_pending,
            self.tcp_pending,
            if self.paused {
                ", parked for recovery resume"
            } else {
                ""
            }
        ))
    }
}
