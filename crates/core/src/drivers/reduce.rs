//! The AllReduce driver — the collective-operations extension.
//!
//! The paper's summary claims the INIC architecture can "accelerate
//! functions ranging from collective operations to MPI derived data
//! types". This driver implements the simplest interesting collective:
//! a flat AllReduce (sum) of one double-precision vector per node.
//!
//! * **Commodity path**: every node TCP-broadcasts its vector, receives
//!   the other `P−1` vectors, and reduces them on the host (memory-bound
//!   streaming charge).
//! * **INIC path**: the card broadcasts the vector with the lightweight
//!   protocol and the `ReduceSum` operator folds every arriving stream
//!   into an accumulator in card memory *as it arrives* — only the
//!   reduced vector ever crosses to the host, and the host does zero
//!   arithmetic.

use std::any::Any;
use std::collections::BTreeMap;

use acc_fpga::{
    Bitstream, GatherKind, InicConfigure, InicConfigured, InicExpect, InicGatherComplete,
    InicScatter, InicScatterDone, ScatterKind,
};
use acc_host::HostKernels;
use acc_proto::{TcpDelivered, TcpSend};
use acc_sim::{Component, Ctx, SimDuration, SimTime};

use super::Attachment;

/// Serialize a double vector to little-endian bytes.
pub fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Inverse of [`f64s_to_bytes`].
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "f64 stream length");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Init,
    Exchange,
    Reduce,
    Done,
}

struct ReduceComputeDone;

/// Timing record of one AllReduce.
#[derive(Clone, Debug, Default)]
pub struct ReduceTimings {
    /// Exchange wall time.
    pub comm: SimDuration,
    /// Host reduction time (zero on the INIC path).
    pub reduce: SimDuration,
    /// Completion instant.
    pub done_at: Option<SimTime>,
    /// Start instant (post-configuration).
    pub started_at: Option<SimTime>,
}

/// Per-node AllReduce driver.
pub struct ReduceDriver {
    label: String,
    rank: usize,
    p: usize,
    attachment: Attachment,
    kernels: HostKernels,
    vector: Vec<f64>,
    rx: BTreeMap<usize, Vec<u8>>,
    pending: usize,
    result: Vec<f64>,
    phase: Phase,
    phase_entered: SimTime,
    /// Timing decomposition.
    pub timings: ReduceTimings,
}

impl ReduceDriver {
    /// Build a driver holding this rank's contribution.
    pub fn new(
        rank: usize,
        p: usize,
        vector: Vec<f64>,
        attachment: Attachment,
        kernels: HostKernels,
    ) -> ReduceDriver {
        ReduceDriver {
            label: format!("reduce-driver{rank}"),
            rank,
            p,
            attachment,
            kernels,
            vector,
            rx: BTreeMap::new(),
            pending: 0,
            result: Vec::new(),
            phase: Phase::Init,
            phase_entered: SimTime::ZERO,
            timings: ReduceTimings::default(),
        }
    }

    /// The reduced vector (identical on every rank), once done.
    pub fn result(&self) -> &[f64] {
        assert_eq!(self.phase, Phase::Done, "driver not finished");
        &self.result
    }

    /// Whether the run completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Phase name for liveness attribution.
    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Init => "init",
            Phase::Exchange => "exchange",
            Phase::Reduce => "reduce",
            Phase::Done => "done",
        }
    }

    /// Phase snapshot for the liveness layer (the AllReduce driver has
    /// no recovery machinery, so it is never parked).
    pub fn progress(&self) -> super::DriverProgress {
        super::DriverProgress {
            rank: self.rank,
            phase: self.phase_name(),
            entered: self.phase_entered,
            paused: false,
            done: self.is_done(),
        }
    }

    fn begin(&mut self, ctx: &mut Ctx) {
        self.timings.started_at = Some(ctx.now());
        self.phase = Phase::Exchange;
        self.phase_entered = ctx.now();
        self.pending = self.p - 1;
        match &self.attachment {
            Attachment::Inic { card, macs, .. } => {
                let card = *card;
                let macs = macs.clone();
                let elems = self.vector.len();
                ctx.send_now(
                    card,
                    InicExpect {
                        stream: 1,
                        kind: GatherKind::ReduceF64 { elems },
                        sources: (0..self.p as u32).map(|s| (s, Some(elems * 8))).collect(),
                    },
                );
                ctx.send_now(
                    card,
                    InicScatter {
                        stream: 1,
                        kind: ScatterKind::Broadcast,
                        data: f64s_to_bytes(&self.vector),
                        dests: macs,
                    },
                );
            }
            Attachment::Tcp { nic, macs } => {
                let nic = *nic;
                let macs = macs.clone();
                for step in 1..self.p {
                    let q = (self.rank + step) % self.p;
                    ctx.send_now(
                        nic,
                        TcpSend {
                            peer: macs[q],
                            chan: 7,
                            data: f64s_to_bytes(&self.vector),
                        },
                    );
                }
                self.check_exchange_complete(ctx);
            }
        }
    }

    fn check_exchange_complete(&mut self, ctx: &mut Ctx) {
        if self.phase != Phase::Exchange {
            return;
        }
        let want = self.vector.len() * 8;
        let complete = (0..self.p)
            .filter(|&s| s != self.rank)
            .all(|s| self.rx.get(&s).is_some_and(|b| b.len() >= want));
        if !complete {
            return;
        }
        self.timings.comm += ctx.now().since(self.phase_entered);
        self.phase = Phase::Reduce;
        self.phase_entered = ctx.now();
        // The real reduction.
        let mut acc = self.vector.clone();
        for s in 0..self.p {
            if s == self.rank {
                continue;
            }
            let other = bytes_to_f64s(&self.rx[&s]);
            for (a, b) in acc.iter_mut().zip(&other) {
                *a += b;
            }
        }
        self.result = acc;
        let charge = self
            .kernels
            .reduce_time(self.vector.len() as u64, self.p as u64);
        ctx.self_in(charge, ReduceComputeDone);
    }

    fn finish(&mut self, ctx: &mut Ctx) {
        self.timings.done_at = Some(ctx.now());
        self.phase = Phase::Done;
        ctx.stats().counter("cluster", "drivers_done").inc();
    }
}

impl Component for ReduceDriver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            match &self.attachment {
                Attachment::Inic { card, .. } => {
                    let card = *card;
                    ctx.send_now(
                        card,
                        InicConfigure {
                            bitstream: Bitstream::allreduce(),
                        },
                    );
                }
                Attachment::Tcp { .. } => self.begin(ctx),
            }
            return;
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Ok(cfg) => {
                cfg.result.unwrap_or_else(|e| {
                    panic!("{}: allreduce bitstream rejected: {e}", self.label)
                });
                self.begin(ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<TcpDelivered>() {
            Ok(d) => {
                let src = self
                    .attachment
                    .macs()
                    .iter()
                    .position(|&m| m == d.peer)
                    .expect("unknown peer");
                self.rx.entry(src).or_default().extend_from_slice(&d.data);
                self.check_exchange_complete(ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Ok(g) => {
                assert_eq!(self.phase, Phase::Exchange);
                self.timings.comm += ctx.now().since(self.phase_entered);
                self.result = bytes_to_f64s(&g.data);
                self.finish(ctx);
                return;
            }
            Err(ev) => ev,
        };
        if ev.downcast_ref::<ReduceComputeDone>().is_some() {
            assert_eq!(self.phase, Phase::Reduce);
            self.timings.reduce += ctx.now().since(self.phase_entered);
            self.finish(ctx);
            return;
        }
        if ev.downcast_ref::<InicScatterDone>().is_some() {
            return;
        }
        if ev.downcast_ref::<super::CardFailed>().is_some() {
            // AllReduce has no degradation path; the run will simply
            // fail to quiesce into Done and the scenario asserts.
            return;
        }
        panic!("{}: unknown event", self.label);
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        if self.is_done() {
            return None;
        }
        Some(format!(
            "rank {} in {} since {} ({} peer contributions pending)",
            self.rank,
            self.phase_name(),
            self.phase_entered,
            self.pending
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_byte_roundtrip() {
        let v = vec![1.5, -2.25, std::f64::consts::PI, 0.0, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }
}
