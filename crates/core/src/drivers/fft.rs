//! The per-node 2D-FFT driver — the FFTW parallel template of
//! Section 3.1 on every network technology.
//!
//! The four steps (❶ row FFTs, ❷ transpose, ❸ row FFTs, ❹ transpose) are
//! a per-node state machine. Compute steps are identical across
//! technologies (charged through [`HostKernels`], executed for real on
//! the slab). The transpose differs:
//!
//! * **commodity NIC** (Fig. 2(a)): the host charges the local-transpose
//!   memory pass, sends each transposed block to its peer over TCP,
//!   accumulates inbound blocks, then charges the final-permutation pass
//!   before assembling the new slab;
//! * **INIC** (Fig. 2(b)): the whole manipulation — local transpose,
//!   packetize, de-packetize, interleave — runs on the card; the host
//!   hands the slab to [`InicScatter`] and receives the assembled result
//!   with [`InicGatherComplete`], paying no memory passes at all.
//!
//! # Fault handling
//!
//! With a [`FaultCtl`] wired, the driver also models a host that can
//! stall (every event is deferred to the end of the stall window) and a
//! collective that survives card deaths rank-locally: the dead rank
//! degrades to its fallback `TcpHostNic` while healthy ranks keep the
//! card datapath, running a **mixed-technology transpose** — the card
//! exchanges blocks among healthy ranks, the host carries the dead
//! ranks' blocks over TCP and interleaves them into the card's slab.
//! Each completed phase can checkpoint the slab so a failover resumes
//! from the last phase every rank completed, negotiated through the
//! [`RecoveryCoordinator`](super::RecoveryCoordinator).

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use acc_algos::fft::{fft_in_place, Direction, Matrix};
use acc_algos::transpose::{
    bytes_to_slab, extract_transposed_block, interleave_block, slab_to_bytes,
};
use acc_fpga::{
    Bitstream, GatherKind, InicConfigure, InicConfigured, InicExpect, InicGatherComplete, InicMode,
    InicRecover, InicScatter, InicScatterDone, ScatterKind,
};
use acc_host::HostKernels;
use acc_proto::{TcpDelivered, TcpSend};
use acc_sim::{Component, Ctx, DataSize, SimDuration, SimTime};

use super::{
    Attachment, CardFailed, Deferred, FaultCtl, RecoveryPolicy, RecoveryReport, ResumeAt,
    RECOVERY_LATENCY,
};

/// Where the state machine is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    /// Waiting for the start event / card configuration.
    Init,
    /// Row FFTs number `i` (1 or 2).
    Fft(u8),
    /// Transpose number `i`: commodity local-transpose charge running.
    LocalTranspose(u8),
    /// Transpose number `i`: blocks in flight / being gathered.
    Exchange(u8),
    /// Transpose number `i`: final-permutation charge running.
    Permute(u8),
    /// Finished.
    Done,
}

/// Self events marking the end of charged compute. Each carries the
/// epoch it was scheduled in: a card failover bumps the epoch and
/// restarts the state machine, and compute timers from the abandoned
/// attempt must not fire into the new one.
struct FftComputeDone(u64);
struct LocalTransposeDone(u64);
struct PermuteDone(u64);

/// Timing record of one completed run, readable after `sim.run()`.
#[derive(Clone, Debug, Default)]
pub struct FftTimings {
    /// Sum of both row-FFT phases.
    pub compute: SimDuration,
    /// Sum of both transposes (wall time per node, including overlap).
    pub transpose: SimDuration,
    /// Host compute buried inside the transposes (local transpose +
    /// final permutation charges) — zero on INIC paths, where the card
    /// absorbs the data manipulation.
    pub transpose_compute: SimDuration,
    /// When this node finished step ❹ (absolute).
    pub done_at: Option<SimTime>,
    /// When this node started step ❶ (absolute; after configuration on
    /// INIC technologies).
    pub started_at: Option<SimTime>,
}

/// The per-node FFT application driver.
pub struct FftDriver {
    label: String,
    rank: usize,
    p: usize,
    rows: usize,
    m: usize,
    attachment: Attachment,
    kernels: HostKernels,
    slab: Matrix,
    phase: Phase,
    phase_entered: SimTime,
    /// Start of the current transpose sub-phase (local transpose or
    /// final permutation) for the compute/comm decomposition.
    subphase_entered: SimTime,
    /// Inbound block bytes per (src_rank, channel) — TCP legs. The
    /// channel namespaces the transpose number by epoch, so bytes from
    /// an aborted attempt never leak into the restarted one.
    rx: BTreeMap<(usize, u16), Vec<u8>>,
    /// Current pairwise exchange step (1-based) — commodity path. The
    /// transpose is "a serialized communications step" (Section 3.1.2):
    /// step `s` sends to `(rank+s) mod P` and waits for the block from
    /// `(rank−s) mod P` before proceeding, as FFTW's pairwise exchange
    /// does.
    exchange_step: usize,
    /// Assembled results delivered by the card, keyed by stream, held
    /// until the TCP legs of a mixed exchange also complete.
    early_gathers: BTreeMap<u32, Vec<u8>>,
    /// Raw gather held while the final-permutation charge runs
    /// (protocol-processor mode): per-source concatenated blocks plus
    /// per-source end offsets.
    raw_gather: Option<(Vec<u8>, Vec<usize>)>,
    /// Untouched copy of the input slab: `begin_fft` transforms `slab`
    /// in place, so a card-failure restart needs the original back.
    pristine: Matrix,
    /// Restart epoch; bumped on card failover so stale self events die.
    epoch: u64,
    /// Whether this driver abandoned its INIC card and degraded to the
    /// commodity fallback path.
    failed_over: bool,
    /// Fault-handling configuration (default when no plan is wired).
    fault_ctl: FaultCtl,
    /// Ranks whose cards died (rank-local recovery only).
    dead: BTreeSet<usize>,
    /// Phase checkpoints: slab snapshots keyed by completed phase
    /// (1 = row FFTs #1, 2 = transpose #1, 3 = row FFTs #2). Captured
    /// only under [`RecoveryPolicy::Checkpointed`] with a coordinator.
    ckpts: BTreeMap<u32, Matrix>,
    /// Parked between reporting a failure and the coordinator's resume.
    paused: bool,
    /// Whether the card finished loading its bitstream. A failover that
    /// lands inside the configuration window must defer its resume
    /// until the card is usable.
    configured: bool,
    /// A [`ResumeAt`] verdict received before `configured`; replayed
    /// when the bitstream lands.
    pending_resume: Option<ResumeAt>,
    /// The checkpoint phase the last resume restarted from.
    resumed_from: Option<u32>,
    /// Whether this driver already counted itself in `drivers_done`.
    reported_done: bool,
    /// Timings, filled as the run progresses.
    pub timings: FftTimings,
}

impl FftDriver {
    /// Build a driver holding `slab` (the node's `rows/P × rows` row
    /// block).
    pub fn new(
        rank: usize,
        p: usize,
        rows: usize,
        slab: Matrix,
        attachment: Attachment,
        kernels: HostKernels,
    ) -> FftDriver {
        assert_eq!(slab.rows(), rows / p, "slab height");
        assert_eq!(slab.cols(), rows, "slab width");
        FftDriver {
            label: format!("fft-driver{rank}"),
            rank,
            p,
            rows,
            m: rows / p,
            attachment,
            kernels,
            pristine: slab.clone(),
            slab,
            phase: Phase::Init,
            phase_entered: SimTime::ZERO,
            subphase_entered: SimTime::ZERO,
            rx: BTreeMap::new(),
            exchange_step: 0,
            early_gathers: BTreeMap::new(),
            raw_gather: None,
            epoch: 0,
            failed_over: false,
            fault_ctl: FaultCtl::default(),
            dead: BTreeSet::new(),
            ckpts: BTreeMap::new(),
            paused: false,
            configured: false,
            pending_resume: None,
            resumed_from: None,
            reported_done: false,
            timings: FftTimings::default(),
        }
    }

    /// Attach fault-handling configuration (builder style).
    #[must_use]
    pub fn with_fault_ctl(mut self, ctl: FaultCtl) -> FftDriver {
        self.fault_ctl = ctl;
        self
    }

    /// The node's final slab (the 2D FFT's row block) once done.
    pub fn result(&self) -> &Matrix {
        assert_eq!(self.phase, Phase::Done, "driver not finished");
        &self.slab
    }

    /// Whether the run completed.
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    /// Whether the driver completed over the degraded fallback path.
    pub fn degraded(&self) -> bool {
        self.failed_over
    }

    /// The checkpoint phase the last failover resumed from, if any.
    pub fn resumed_from(&self) -> Option<u32> {
        self.resumed_from
    }

    /// Phase name for liveness attribution; the two transposes report
    /// as one phase each (their sub-phases share one model budget).
    fn phase_name(&self) -> &'static str {
        match self.phase {
            Phase::Init => "init",
            Phase::Fft(1) => "fft1",
            Phase::Fft(_) => "fft2",
            Phase::LocalTranspose(1) | Phase::Exchange(1) | Phase::Permute(1) => "transpose1",
            Phase::LocalTranspose(_) | Phase::Exchange(_) | Phase::Permute(_) => "transpose2",
            Phase::Done => "done",
        }
    }

    /// Phase snapshot for the liveness layer.
    pub fn progress(&self) -> super::DriverProgress {
        super::DriverProgress {
            rank: self.rank,
            phase: self.phase_name(),
            entered: self.phase_entered,
            paused: self.paused,
            done: self.is_done(),
        }
    }

    fn partition_bytes(&self) -> DataSize {
        DataSize::from_bytes((self.m * self.rows * 16) as u64)
    }

    /// INIC stream id for transpose `which`, namespaced by epoch so a
    /// restarted exchange never collides with the aborted one's demux
    /// state (epoch 0 keeps the historical ids 1 and 2).
    fn stream(&self, which: u8) -> u32 {
        (self.epoch as u32) * 8 + u32::from(which)
    }

    /// TCP channel for transpose `which`, namespaced like [`stream`].
    fn chan(&self, which: u8) -> u16 {
        (self.epoch as u16) * 4 + u16::from(which)
    }

    /// Whether phase checkpoints are being captured.
    fn ckpt_armed(&self) -> bool {
        self.fault_ctl.coordinator.is_some()
            && self.fault_ctl.policy == RecoveryPolicy::Checkpointed
    }

    /// Highest phase this rank could resume from (4 = finished).
    fn completed_phase(&self) -> u32 {
        if self.phase == Phase::Done {
            return 4;
        }
        (1..=3u32)
            .rev()
            .find(|k| self.ckpts.contains_key(k))
            .unwrap_or(0)
    }

    // ---- phase transitions ----

    fn begin_fft(&mut self, which: u8, ctx: &mut Ctx) {
        self.phase = Phase::Fft(which);
        self.phase_entered = ctx.now();
        // A failover restart keeps the original start instant: the cost
        // of the aborted attempt is part of the degraded run's time.
        if which == 1 && self.timings.started_at.is_none() {
            self.timings.started_at = Some(ctx.now());
        }
        // The real computation.
        for r in 0..self.slab.rows() {
            fft_in_place(self.slab.row_mut(r), Direction::Forward);
        }
        // The charged time: one of the two Eq. 4 halves.
        let charge = self.kernels.fft_compute_time(self.rows, self.p) / 2;
        ctx.self_in(charge, FftComputeDone(self.epoch));
    }

    fn on_fft_done(&mut self, ctx: &mut Ctx) {
        let Phase::Fft(which) = self.phase else {
            panic!("{}: FftComputeDone outside Fft phase", self.label);
        };
        self.timings.compute += ctx.now().since(self.phase_entered);
        if self.ckpt_armed() {
            let k = if which == 1 { 1 } else { 3 };
            self.ckpts.insert(k, self.slab.clone());
        }
        self.begin_transpose(which, ctx);
    }

    fn begin_transpose(&mut self, which: u8, ctx: &mut Ctx) {
        self.phase_entered = ctx.now();
        if matches!(
            self.attachment.inic_mode(),
            None | Some(InicMode::ProtocolProcessor)
        ) {
            // Host performs the data manipulation (commodity NIC, or an
            // INIC used purely as a protocol processor).
            self.phase = Phase::LocalTranspose(which);
            self.subphase_entered = ctx.now();
            let charge = self.kernels.local_transpose_time(self.partition_bytes());
            ctx.self_in(charge, LocalTransposeDone(self.epoch));
            return;
        }
        match &self.attachment {
            Attachment::Inic {
                card,
                macs,
                fallback,
                ..
            } => {
                let card = *card;
                let macs = macs.clone();
                let fallback = fallback.clone();
                let stream = self.stream(which);
                self.phase = Phase::Exchange(which);
                let dead = self.dead.clone();
                ctx.send_now(
                    card,
                    InicExpect {
                        stream,
                        kind: GatherKind::InterleaveBlocks {
                            m: self.m,
                            rows: self.rows,
                        },
                        sources: (0..self.p as u32)
                            .filter(|s| !dead.contains(&(*s as usize)))
                            .map(|s| (s, Some(self.m * self.m * 16)))
                            .collect(),
                    },
                );
                ctx.send_now(
                    card,
                    InicScatter {
                        stream,
                        kind: ScatterKind::TransposeBlocks { m: self.m },
                        data: slab_to_bytes(&self.slab),
                        dests: macs,
                    },
                );
                // Mixed-technology legs: the dead ranks' blocks cannot
                // ride the card (their cards are gone), so the host
                // extracts and ships them over the fallback TCP path.
                if !dead.is_empty() {
                    let (fb_nic, fb_macs) =
                        fallback.expect("rank-local degradation needs a fallback path");
                    let chan = self.chan(which);
                    for &d in &dead {
                        let block = extract_transposed_block(&self.slab, d);
                        ctx.send_now(
                            fb_nic,
                            TcpSend {
                                peer: fb_macs[d],
                                chan,
                                data: slab_to_bytes(&block),
                            },
                        );
                    }
                }
                // The card (or a TCP leg) might already have everything
                // (tiny P, fast peers, resume races): finish if so.
                self.try_finish_inic_exchange(which, ctx);
            }
            Attachment::Tcp { .. } => unreachable!("handled above"),
        }
    }

    /// Local transpose charge done. Commodity path: begin the
    /// serialized pairwise exchange. Protocol-processor path: hand the
    /// pre-transposed blocks to the card for transmission.
    fn on_local_transpose_done(&mut self, ctx: &mut Ctx) {
        let Phase::LocalTranspose(which) = self.phase else {
            panic!("{}: LocalTransposeDone out of phase", self.label);
        };
        self.timings.transpose_compute += ctx.now().since(self.subphase_entered);
        self.phase = Phase::Exchange(which);
        if let Attachment::Inic {
            card, macs, mode, ..
        } = &self.attachment
        {
            debug_assert_eq!(*mode, InicMode::ProtocolProcessor);
            let card = *card;
            let macs = macs.clone();
            let stream = self.stream(which);
            let block_bytes = self.m * self.m * 16;
            // Blocks in ring order (own rank first), transposed on the
            // host — the card only packetizes.
            let mut data = Vec::with_capacity(self.p * block_bytes);
            for step in 0..self.p {
                let q = (self.rank + step) % self.p;
                data.extend(slab_to_bytes(&extract_transposed_block(&self.slab, q)));
            }
            ctx.send_now(
                card,
                InicExpect {
                    stream,
                    kind: GatherKind::Raw,
                    sources: (0..self.p as u32).map(|s| (s, Some(block_bytes))).collect(),
                },
            );
            ctx.send_now(
                card,
                InicScatter {
                    stream,
                    kind: ScatterKind::Raw {
                        parts: vec![block_bytes; self.p],
                    },
                    data,
                    dests: macs,
                },
            );
            return;
        }
        self.exchange_step = 1;
        self.send_current_step_block(which, ctx);
        self.check_exchange_complete(ctx);
    }

    /// Post the block for the current exchange step.
    fn send_current_step_block(&mut self, which: u8, ctx: &mut Ctx) {
        if self.exchange_step >= self.p {
            return;
        }
        let Attachment::Tcp { nic, macs } = &self.attachment else {
            unreachable!("pairwise exchange only on the commodity path");
        };
        let nic = *nic;
        let q = (self.rank + self.exchange_step) % self.p;
        let peer = macs[q];
        let block = extract_transposed_block(&self.slab, q);
        ctx.send_now(
            nic,
            TcpSend {
                peer,
                chan: self.chan(which),
                data: slab_to_bytes(&block),
            },
        );
    }

    fn on_tcp_delivered(&mut self, d: TcpDelivered, ctx: &mut Ctx) {
        let src = self
            .attachment
            .resolve_src(d.peer)
            .expect("delivery from unknown MAC");
        self.rx
            .entry((src, d.chan))
            .or_default()
            .extend_from_slice(&d.data);
        if self.paused {
            return; // buffered; consumed after the coordinator resumes us
        }
        if matches!(self.attachment, Attachment::Inic { .. }) {
            if let Phase::Exchange(which) = self.phase {
                self.try_finish_inic_exchange(which, ctx);
            }
            return;
        }
        self.check_exchange_complete(ctx);
    }

    /// Advance the serialized exchange as far as received data allows:
    /// step `s` completes only when the block from `(rank−s) mod P` has
    /// fully arrived; only then is step `s+1`'s block posted.
    fn check_exchange_complete(&mut self, ctx: &mut Ctx) {
        let Phase::Exchange(which) = self.phase else {
            return;
        };
        if matches!(self.attachment, Attachment::Inic { .. }) {
            return; // completion is signalled by the card
        }
        let block_bytes = self.m * self.m * 16;
        let chan = self.chan(which);
        while self.exchange_step < self.p {
            let from = (self.rank + self.p - self.exchange_step) % self.p;
            let have = self
                .rx
                .get(&(from, chan))
                .is_some_and(|b| b.len() >= block_bytes);
            if !have {
                return;
            }
            self.exchange_step += 1;
            self.send_current_step_block(which, ctx);
        }
        // All steps done: charge the final permutation.
        self.phase = Phase::Permute(which);
        self.subphase_entered = ctx.now();
        let charge = self.kernels.final_permutation_time(self.partition_bytes());
        ctx.self_in(charge, PermuteDone(self.epoch));
    }

    /// Commodity path: permutation charge done — assemble the new slab.
    fn on_permute_done(&mut self, ctx: &mut Ctx) {
        let Phase::Permute(which) = self.phase else {
            panic!("{}: PermuteDone out of phase", self.label);
        };
        self.timings.transpose_compute += ctx.now().since(self.subphase_entered);
        let block_bytes = self.m * self.m * 16;
        let chan = self.chan(which);
        let mut out = Matrix::zeros(self.m, self.rows);
        if let Some((data, bounds)) = self.raw_gather.take() {
            // Protocol-processor path: per-source blocks arrived via the
            // card, already transposed by this host's peers.
            let mut start = 0usize;
            for (s, &end) in bounds.iter().enumerate() {
                let block = bytes_to_slab(&data[start..end], self.m, self.m);
                interleave_block(&mut out, s, &block);
                start = end;
            }
        } else {
            for s in 0..self.p {
                let block = if s == self.rank {
                    extract_transposed_block(&self.slab, self.rank)
                } else {
                    let buf = self.rx.get_mut(&(s, chan)).expect("checked complete");
                    let bytes: Vec<u8> = buf.drain(..block_bytes).collect();
                    bytes_to_slab(&bytes, self.m, self.m)
                };
                interleave_block(&mut out, s, &block);
            }
        }
        self.slab = out;
        self.finish_transpose(which, ctx);
    }

    /// INIC path: finish transpose `which` once the card's gather *and*
    /// every mixed-technology TCP leg have arrived. The card interleaves
    /// the healthy ranks' blocks; the host interleaves the dead ranks'
    /// blocks into the same slab (they arrive over TCP, pre-transposed
    /// by the degraded sender's host).
    fn try_finish_inic_exchange(&mut self, which: u8, ctx: &mut Ctx) {
        if self.paused {
            return;
        }
        let stream = self.stream(which);
        if !self.early_gathers.contains_key(&stream) {
            return;
        }
        let block_bytes = self.m * self.m * 16;
        let chan = self.chan(which);
        let ready = self.dead.iter().all(|&d| {
            self.rx
                .get(&(d, chan))
                .is_some_and(|b| b.len() >= block_bytes)
        });
        if !ready {
            return;
        }
        let bytes = self.early_gathers.remove(&stream).expect("checked present");
        let mut out = bytes_to_slab(&bytes, self.m, self.rows);
        let dead = self.dead.clone();
        for &d in &dead {
            let buf = self.rx.get_mut(&(d, chan)).expect("checked ready");
            let block_bytes_vec: Vec<u8> = buf.drain(..block_bytes).collect();
            let block = bytes_to_slab(&block_bytes_vec, self.m, self.m);
            interleave_block(&mut out, d, &block);
        }
        self.slab = out;
        self.finish_transpose(which, ctx);
    }

    fn finish_transpose(&mut self, which: u8, ctx: &mut Ctx) {
        self.timings.transpose += ctx.now().since(self.phase_entered);
        match which {
            1 => {
                if self.ckpt_armed() {
                    self.ckpts.insert(2, self.slab.clone());
                }
                self.begin_fft(2, ctx);
            }
            2 => {
                self.phase = Phase::Done;
                self.timings.done_at = Some(ctx.now());
                if !self.reported_done {
                    self.reported_done = true;
                    ctx.stats().counter("cluster", "drivers_done").inc();
                }
            }
            _ => unreachable!(),
        }
    }

    // ---- failure handling ----

    fn on_card_failed(&mut self, node: u32, ctx: &mut Ctx) {
        match self.fault_ctl.coordinator {
            None => self.full_restart_failover(ctx),
            Some(coord) => self.rank_local_failover(node, coord, ctx),
        }
    }

    /// The whole cluster degrades together (PR 1 behaviour, still used
    /// under [`RecoveryPolicy::FullRestart`] and for the
    /// protocol-processor mode, which has no card datapath worth
    /// keeping): drop the dead card — even a healthy one, peers can no
    /// longer reach every rank through the INIC path — and restart from
    /// the pristine slab copy over the commodity fallback NIC.
    fn full_restart_failover(&mut self, ctx: &mut Ctx) {
        if self.failed_over {
            return; // a second card death changes nothing
        }
        let (nic, macs) = match &self.attachment {
            Attachment::Inic {
                fallback: Some((nic, macs)),
                ..
            } => (*nic, macs.clone()),
            _ => panic!("{}: card failure without a wired fallback path", self.label),
        };
        ctx.stats().counter(&self.label, "card_failovers").inc();
        self.failed_over = true;
        self.epoch += 1;
        self.attachment = Attachment::Tcp { nic, macs };
        // Discard all partial progress — `slab` was transformed in place
        // by the aborted attempt, so restart from the pristine copy.
        // Only the original start instant survives into the timings.
        self.slab = self.pristine.clone();
        self.rx.clear();
        self.exchange_step = 0;
        self.early_gathers.clear();
        self.raw_gather = None;
        let started = self.timings.started_at;
        self.timings = FftTimings::default();
        self.timings.started_at = started;
        self.phase = Phase::Init;
        self.begin_fft(1, ctx);
    }

    /// Rank-local degradation: only the dead rank abandons its card.
    /// Every rank pauses, tells its card to forget the dead peer (and
    /// abort the in-flight exchange stream, if any), and reports its
    /// highest completed checkpoint to the coordinator, which answers
    /// with the cluster-wide resume phase.
    fn rank_local_failover(&mut self, node: u32, coord: acc_sim::ComponentId, ctx: &mut Ctx) {
        let node_idx = node as usize;
        if !self.dead.insert(node_idx) {
            return; // duplicate death notice
        }
        // The stream to abort is the pre-bump one: that is what the
        // card's demux and retransmit state still reference.
        let abort_stream = match self.phase {
            Phase::Exchange(which) => Some(self.stream(which)),
            _ => None,
        };
        self.epoch += 1;
        self.paused = true;
        if self.rank == node_idx {
            let (nic, macs) = match &self.attachment {
                Attachment::Inic {
                    fallback: Some((nic, macs)),
                    ..
                } => (*nic, macs.clone()),
                _ => panic!("{}: card failure without a wired fallback path", self.label),
            };
            ctx.stats().counter(&self.label, "card_failovers").inc();
            self.failed_over = true;
            self.attachment = Attachment::Tcp { nic, macs };
        } else if let Attachment::Inic { card, macs, .. } = &self.attachment {
            // Healthy rank: keep the card, purge the dead peer from its
            // retransmit machinery and abort the stranded stream.
            let dead_mac = macs[node_idx];
            ctx.send_now(
                *card,
                InicRecover {
                    dead: dead_mac,
                    abort_stream,
                },
            );
        }
        ctx.send_in(
            RECOVERY_LATENCY,
            coord,
            RecoveryReport {
                rank: self.rank as u32,
                round: self.epoch,
                phase: self.completed_phase(),
            },
        );
    }

    /// Coordinator verdict: restore the agreed checkpoint and resume.
    fn on_resume_at(&mut self, r: ResumeAt, ctx: &mut Ctx) {
        if r.round != self.epoch {
            return; // a newer failure superseded this round
        }
        if !self.configured && matches!(self.attachment, Attachment::Inic { .. }) {
            // The failure landed inside the card's configuration
            // window. Every INIC phase needs a usable card, so the
            // rank stays paused (buffering whatever arrives) until the
            // bitstream lands, then replays this verdict.
            self.pending_resume = Some(r);
            return;
        }
        self.paused = false;
        self.resumed_from = Some(r.phase);
        ctx.stats().counter(&self.label, "phase_resumes").inc();
        if r.phase >= 4 {
            return; // every rank had already finished
        }
        self.early_gathers.clear();
        self.raw_gather = None;
        self.exchange_step = 0;
        let restore = |ckpts: &BTreeMap<u32, Matrix>, k: u32| {
            ckpts
                .get(&k)
                .cloned()
                .unwrap_or_else(|| panic!("resume phase {k} without its checkpoint"))
        };
        match r.phase {
            0 => {
                self.slab = self.pristine.clone();
                self.begin_fft(1, ctx);
            }
            1 => {
                self.slab = restore(&self.ckpts, 1);
                self.begin_transpose(1, ctx);
            }
            2 => {
                self.slab = restore(&self.ckpts, 2);
                self.begin_fft(2, ctx);
            }
            3 => {
                self.slab = restore(&self.ckpts, 3);
                self.begin_transpose(2, ctx);
            }
            _ => unreachable!(),
        }
    }
}

impl Component for FftDriver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        // Unwrap an event this host already deferred once.
        let ev = match ev.downcast::<Deferred>() {
            Ok(d) => d.0,
            Err(ev) => ev,
        };
        // A stalled host services nothing: kernel completions, NIC
        // interrupts and failure notices all wait for the window's end.
        if let Some(release) = self.fault_ctl.stalls.deferral(ctx.now()) {
            ctx.stats().counter(&self.label, "stall_deferrals").inc();
            ctx.self_in(release.since(ctx.now()), Deferred(ev));
            return;
        }
        if ev.downcast_ref::<()>().is_some() {
            match &self.attachment {
                Attachment::Inic { card, mode, .. } => {
                    let card = *card;
                    let bitstream = match mode {
                        InicMode::ProtocolProcessor => Bitstream::protocol_only(),
                        _ => Bitstream::fft_transpose(self.m),
                    };
                    ctx.send_now(card, InicConfigure { bitstream });
                }
                Attachment::Tcp { .. } => self.begin_fft(1, ctx),
            }
            return;
        }
        if let Some(cf) = ev.downcast_ref::<CardFailed>() {
            return self.on_card_failed(cf.node, ctx);
        }
        if let Some(r) = ev.downcast_ref::<ResumeAt>() {
            return self.on_resume_at(*r, ctx);
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Ok(cfg) => {
                if self.failed_over {
                    return; // the card answered just before it died
                }
                cfg.result
                    .unwrap_or_else(|e| panic!("{}: FFT bitstream rejected: {e}", self.label));
                self.configured = true;
                if let Some(r) = self.pending_resume.take() {
                    // A failover interrupted the configuration; run
                    // the deferred resume instead of a fresh start.
                    self.on_resume_at(r, ctx);
                    return;
                }
                self.begin_fft(1, ctx);
                return;
            }
            Err(ev) => ev,
        };
        if let Some(FftComputeDone(epoch)) = ev.downcast_ref::<FftComputeDone>() {
            if *epoch == self.epoch {
                return self.on_fft_done(ctx);
            }
            return; // compute timer from an abandoned attempt
        }
        if let Some(LocalTransposeDone(epoch)) = ev.downcast_ref::<LocalTransposeDone>() {
            if *epoch == self.epoch {
                return self.on_local_transpose_done(ctx);
            }
            return;
        }
        if let Some(PermuteDone(epoch)) = ev.downcast_ref::<PermuteDone>() {
            if *epoch == self.epoch {
                return self.on_permute_done(ctx);
            }
            return;
        }
        let ev = match ev.downcast::<TcpDelivered>() {
            Ok(d) => return self.on_tcp_delivered(*d, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Ok(g) => {
                if self.failed_over {
                    return; // stale card traffic from before the failure
                }
                if self.attachment.inic_mode() == Some(InicMode::ProtocolProcessor) {
                    match self.phase {
                        Phase::Exchange(which) if self.stream(which) == g.stream => {
                            // Host still owes the final permutation.
                            self.raw_gather =
                                Some((g.data, g.bucket_bounds.expect("raw gather carries bounds")));
                            self.phase = Phase::Permute(which);
                            self.subphase_entered = ctx.now();
                            let charge =
                                self.kernels.final_permutation_time(self.partition_bytes());
                            ctx.self_in(charge, PermuteDone(self.epoch));
                        }
                        _ => {
                            // Stale or early; hold it (a stale stream id
                            // can never match a future one).
                            self.early_gathers.insert(g.stream, g.data);
                        }
                    }
                    return;
                }
                self.early_gathers.insert(g.stream, g.data);
                if let Phase::Exchange(which) = self.phase {
                    self.try_finish_inic_exchange(which, ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        if ev.downcast_ref::<InicScatterDone>().is_some() {
            return; // send-side completion is informational here
        }
        panic!("{}: unknown event", self.label);
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        if self.is_done() {
            return None;
        }
        Some(format!(
            "rank {} in {} since {} (epoch {}, exchange step {}{})",
            self.rank,
            self.phase_name(),
            self.phase_entered,
            self.epoch,
            self.exchange_step,
            if self.paused {
                ", parked for recovery resume"
            } else {
                ""
            }
        ))
    }
}
