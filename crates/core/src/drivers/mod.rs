//! Per-node application drivers.
//!
//! A driver is the "host program" of one cluster node: it owns the
//! node's data partition, charges host compute time through the
//! calibrated kernel models, performs the *actual* data transformations
//! (the same `acc-algos` functions the oracles use), and talks to its
//! network attachment — a [`TcpHostNic`](acc_proto::TcpHostNic) for the
//! commodity technologies or an [`InicCard`](acc_fpga::InicCard) for
//! the INIC technologies.

pub mod fft;
pub mod reduce;
pub mod sort;

use acc_fpga::InicMode;
use acc_net::MacAddr;
use acc_sim::ComponentId;

/// How a node reaches the network.
#[derive(Clone, Debug)]
pub enum Attachment {
    /// Commodity NIC + kernel TCP (Fast or Gigabit Ethernet — the link
    /// rate is a property of the wiring, not the driver).
    Tcp {
        /// The node's `TcpHostNic` component.
        nic: ComponentId,
        /// MAC of every rank.
        macs: Vec<MacAddr>,
    },
    /// Intelligent NIC.
    Inic {
        /// The node's `InicCard` component.
        card: ComponentId,
        /// MAC of every rank.
        macs: Vec<MacAddr>,
        /// Operating mode: [`InicMode::Combined`] fuses the application
        /// operators into the datapath; [`InicMode::ProtocolProcessor`]
        /// offloads only the protocol, leaving the data manipulation on
        /// the host (the Section 2 mode ablation).
        mode: InicMode,
        /// Degradation path: a commodity `TcpHostNic` per rank (this
        /// node's component id, every rank's fallback MAC table), wired
        /// only when the fault plan can kill a card. On [`CardFailed`]
        /// the driver abandons the card and restarts over this path.
        fallback: Option<(ComponentId, Vec<MacAddr>)>,
    },
}

/// Cluster → every driver: node `node`'s INIC card died permanently.
/// All ranks fail over together (a collective needs every peer on the
/// same path) and restart the computation from their retained inputs
/// over the commodity fallback NICs.
#[derive(Clone, Copy, Debug)]
pub struct CardFailed {
    /// Rank whose card died.
    pub node: u32,
}

impl Attachment {
    /// MAC table shared by both variants.
    pub fn macs(&self) -> &[MacAddr] {
        match self {
            Attachment::Tcp { macs, .. } | Attachment::Inic { macs, .. } => macs,
        }
    }

    /// The INIC operating mode, if this is an INIC attachment.
    pub fn inic_mode(&self) -> Option<InicMode> {
        match self {
            Attachment::Inic { mode, .. } => Some(*mode),
            Attachment::Tcp { .. } => None,
        }
    }
}

/// Receive-side bucket count for a per-node key volume: enough buckets
/// that each bucket fits the processor cache, and never fewer than the
/// paper's 128 ("on a problem size of 2²¹ keys or more, a minimum of 128
/// buckets are needed for the problem to map well into cache").
pub fn recv_buckets_for(keys_per_node: u64) -> usize {
    let target_bucket_bytes = 128 * 1024;
    let needed = (keys_per_node * 4).div_ceil(target_bucket_bytes).max(128);
    needed.next_power_of_two() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_floors_at_128() {
        assert_eq!(recv_buckets_for(1 << 10), 128);
        assert_eq!(recv_buckets_for(1 << 21), 128);
    }

    #[test]
    fn bucket_count_grows_for_big_partitions() {
        // 2²⁵ keys = 128 MiB → 1024 buckets of 128 KiB.
        assert_eq!(recv_buckets_for(1 << 25), 1024);
        // Power of two always.
        for shift in 10..26 {
            assert!(recv_buckets_for(1u64 << shift).is_power_of_two());
        }
    }
}
