//! Per-node application drivers.
//!
//! A driver is the "host program" of one cluster node: it owns the
//! node's data partition, charges host compute time through the
//! calibrated kernel models, performs the *actual* data transformations
//! (the same `acc-algos` functions the oracles use), and talks to its
//! network attachment — a [`TcpHostNic`](acc_proto::TcpHostNic) for the
//! commodity technologies or an [`InicCard`](acc_fpga::InicCard) for
//! the INIC technologies.

pub mod coll;
pub mod fft;
pub mod sort;

use std::any::Any;
use std::collections::BTreeMap;

use acc_fpga::InicMode;
use acc_host::StallSchedule;
use acc_net::MacAddr;
use acc_sim::{Component, ComponentId, Ctx, SimDuration, SimTime};

/// How a node reaches the network.
#[derive(Clone, Debug)]
pub enum Attachment {
    /// Commodity NIC + kernel TCP (Fast or Gigabit Ethernet — the link
    /// rate is a property of the wiring, not the driver).
    Tcp {
        /// The node's `TcpHostNic` component.
        nic: ComponentId,
        /// MAC of every rank.
        macs: Vec<MacAddr>,
    },
    /// Intelligent NIC.
    Inic {
        /// The node's `InicCard` component.
        card: ComponentId,
        /// MAC of every rank.
        macs: Vec<MacAddr>,
        /// Operating mode: [`InicMode::Combined`] fuses the application
        /// operators into the datapath; [`InicMode::ProtocolProcessor`]
        /// offloads only the protocol, leaving the data manipulation on
        /// the host (the Section 2 mode ablation).
        mode: InicMode,
        /// Degradation path: a commodity `TcpHostNic` per rank (this
        /// node's component id, every rank's fallback MAC table), wired
        /// only when the fault plan can kill a card. On [`CardFailed`]
        /// the driver abandons the card and restarts over this path.
        fallback: Option<(ComponentId, Vec<MacAddr>)>,
    },
}

/// Cluster → every driver: node `node`'s INIC card died permanently.
/// What happens next depends on the [`RecoveryPolicy`]: under
/// [`RecoveryPolicy::FullRestart`] all ranks fail over together and
/// restart from their retained inputs over the commodity fallback NICs;
/// under the rank-local policies only the dead rank degrades to its
/// fallback `TcpHostNic`, healthy ranks keep their INIC datapath, and
/// the collective resumes (from the last checkpointed phase when
/// checkpointing is on) as a mixed-technology exchange.
#[derive(Clone, Copy, Debug)]
pub struct CardFailed {
    /// Rank whose card died.
    pub node: u32,
}

/// How the cluster recovers from a permanent card failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RecoveryPolicy {
    /// Every rank abandons its card and restarts the whole collective
    /// from input bytes over the fallback NICs (PR 1 behaviour).
    FullRestart,
    /// Only the dead rank falls back to TCP; healthy ranks keep their
    /// INICs and the collective restarts from scratch as a
    /// mixed-technology exchange.
    RankLocal,
    /// Rank-local degradation plus phase-level checkpoints: the
    /// collective resumes from the earliest phase any rank had not yet
    /// completed, instead of from scratch.
    #[default]
    Checkpointed,
}

/// One rank's phase snapshot, read by the liveness layer to attribute a
/// hang to a named phase and rank. Every driver exposes it via a
/// `progress()` accessor; the phase names match the
/// [`DeadlineHierarchy`](crate::deadline::DeadlineHierarchy) budgets.
#[derive(Clone, Debug)]
pub struct DriverProgress {
    /// The rank.
    pub rank: usize,
    /// Current phase name (`init`, `fft1`, `exchange`, ..., `done`).
    pub phase: &'static str,
    /// When the driver entered that phase.
    pub entered: SimTime,
    /// Whether the driver is parked awaiting a recovery resume.
    pub paused: bool,
    /// Whether the driver finished.
    pub done: bool,
}

/// Host-side latency of one failure-coordination message (detection,
/// kernel path, daemon wakeup). Charged on each report and each resume
/// broadcast.
pub const RECOVERY_LATENCY: SimDuration = SimDuration::from_micros(200);

/// Wrapper for an event a stalled host could not service: the driver
/// re-enqueues the original event for the end of the stall window.
/// (A plain re-send would double-box the `Box<dyn Any>`.)
pub struct Deferred(pub Box<dyn Any>);

/// Per-driver fault-handling configuration, wired by the cluster
/// builder only when a fault plan is attached.
#[derive(Default)]
pub struct FaultCtl {
    /// This node's stall windows from the plan (empty = never stalls).
    pub stalls: StallSchedule,
    /// Card-failure recovery policy.
    pub policy: RecoveryPolicy,
    /// The [`RecoveryCoordinator`], present only when the plan can kill
    /// cards and the policy is rank-local. Its presence also arms
    /// checkpoint capture under [`RecoveryPolicy::Checkpointed`].
    pub coordinator: Option<ComponentId>,
}

/// Driver → coordinator: this rank processed a [`CardFailed`] and can
/// resume from checkpoint `phase` (0 = from scratch).
#[derive(Clone, Copy, Debug)]
pub struct RecoveryReport {
    /// Reporting rank.
    pub rank: u32,
    /// Failover round (the driver's post-bump epoch) the report belongs
    /// to; reports from different rounds are never mixed.
    pub round: u64,
    /// Highest phase checkpoint this rank holds (its phase counter).
    /// The collective engine reports *completed rounds* here — the
    /// coordinator's minimum is then the last round whose checkpoint
    /// every survivor can restore.
    pub phase: u32,
}

/// Coordinator → every driver: all ranks reported for `round`; resume
/// the collective from checkpoint `phase` (the minimum over ranks — a
/// collective phase needs every peer's participation).
#[derive(Clone, Copy, Debug)]
pub struct ResumeAt {
    /// Failover round this decision belongs to.
    pub round: u64,
    /// Phase to restore and resume from.
    pub phase: u32,
}

/// Cluster-attached failover coordinator: gathers one
/// [`RecoveryReport`] per rank per round and broadcasts the minimum
/// completed phase as the cluster-wide resume point. Models the small
/// host-level consensus a real cluster would run over its management
/// network; each hop is charged [`RECOVERY_LATENCY`].
pub struct RecoveryCoordinator {
    label: String,
    drivers: Vec<ComponentId>,
    /// Collected phases per round.
    rounds: BTreeMap<u64, Vec<u32>>,
}

impl RecoveryCoordinator {
    /// Build a coordinator over the given driver components.
    pub fn new(drivers: Vec<ComponentId>) -> RecoveryCoordinator {
        RecoveryCoordinator {
            label: "recovery-coordinator".to_owned(),
            drivers,
            rounds: BTreeMap::new(),
        }
    }
}

impl Component for RecoveryCoordinator {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        let report = ev
            .downcast::<RecoveryReport>()
            .unwrap_or_else(|_| panic!("{}: unknown event", self.label));
        let round = report.round;
        let phases = self.rounds.entry(round).or_default();
        phases.push(report.phase);
        if phases.len() < self.drivers.len() {
            return;
        }
        let phase = *phases.iter().min().expect("at least one report");
        ctx.stats().counter(&self.label, "recovery_rounds").inc();
        for &d in &self.drivers {
            ctx.send_in(RECOVERY_LATENCY, d, ResumeAt { round, phase });
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

impl Attachment {
    /// MAC table shared by both variants.
    pub fn macs(&self) -> &[MacAddr] {
        match self {
            Attachment::Tcp { macs, .. } | Attachment::Inic { macs, .. } => macs,
        }
    }

    /// The INIC operating mode, if this is an INIC attachment.
    pub fn inic_mode(&self) -> Option<InicMode> {
        match self {
            Attachment::Inic { mode, .. } => Some(*mode),
            Attachment::Tcp { .. } => None,
        }
    }

    /// Resolve a delivery's source MAC to a rank, accepting both the
    /// primary table and (on an INIC attachment with a wired fallback)
    /// the fallback table — a degraded peer sends from its fallback NIC.
    pub fn resolve_src(&self, mac: MacAddr) -> Option<usize> {
        if let Some(rank) = self.macs().iter().position(|&m| m == mac) {
            return Some(rank);
        }
        if let Attachment::Inic {
            fallback: Some((_, fb_macs)),
            ..
        } = self
        {
            return fb_macs.iter().position(|&m| m == mac);
        }
        None
    }
}

/// Receive-side bucket count for a per-node key volume: enough buckets
/// that each bucket fits the processor cache, and never fewer than the
/// paper's 128 ("on a problem size of 2²¹ keys or more, a minimum of 128
/// buckets are needed for the problem to map well into cache").
pub fn recv_buckets_for(keys_per_node: u64) -> usize {
    let target_bucket_bytes = 128 * 1024;
    let needed = (keys_per_node * 4).div_ceil(target_bucket_bytes).max(128);
    needed.next_power_of_two() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_count_floors_at_128() {
        assert_eq!(recv_buckets_for(1 << 10), 128);
        assert_eq!(recv_buckets_for(1 << 21), 128);
    }

    #[test]
    fn bucket_count_grows_for_big_partitions() {
        // 2²⁵ keys = 128 MiB → 1024 buckets of 128 KiB.
        assert_eq!(recv_buckets_for(1 << 25), 1024);
        // Power of two always.
        for shift in 10..26 {
            assert!(recv_buckets_for(1u64 << shift).is_power_of_two());
        }
    }
}
