//! The collective-engine driver — one rank of any `acc-coll` schedule.
//!
//! Where the FFT and sort drivers hard-code their application's
//! exchange pattern, this driver *interprets* a per-rank
//! [`Schedule`](acc_coll::Schedule) compiled by `acc-coll`'s builders:
//! the same rounds drive all three execution paths, so adding an
//! algorithm to the engine needs no driver changes at all.
//!
//! * **Host-TCP path** (commodity technologies): each round's sends go
//!   out as one TCP message per peer on a per-round channel; `Sum`
//!   receives fold on the host at the calibrated streaming-reduction
//!   rate.
//! * **Combined INIC path**: the card is configured with the
//!   [`Bitstream::collective`] datapath (stream router sized to the
//!   fan-out, `ReduceSum` only when the schedule folds data). A `Sum`
//!   round becomes a `ReduceF64` gather — the card accumulates the
//!   peer's stream against this rank's looped-back contribution and
//!   only the folded result crosses to the host, so the host does
//!   **zero arithmetic**. Copy/Discard rounds are raw gathers; sends
//!   ride a [`ScatterKind::Unicast`] per-destination scatter.
//! * **Protocol-only INIC path**: raw gathers and unicast scatters —
//!   the wire protocol is offloaded, the arithmetic stays on the host.
//!
//! Rounds are strictly ordered on each rank: the driver never issues
//! round `t + 1` card requests before round `t`'s gather and scatter
//! both completed, so per-round streams (`round + 1`) are announced
//! exactly once and stale completions cannot exist. Ranks still slide
//! against each other — the cards buffer early packets until the local
//! rank announces the stream.

use std::any::Any;
use std::collections::BTreeMap;

use acc_coll::plan::{ranges_elems, RecvSpec, Round};
use acc_coll::{bytes_to_f64s, f64s_to_bytes, OffloadPlan, RecvOp, Schedule};
use acc_fpga::{
    GatherKind, InicConfigure, InicConfigured, InicExpect, InicGatherComplete, InicScatter,
    InicScatterDone, ScatterKind,
};
use acc_host::HostKernels;
use acc_proto::{TcpDelivered, TcpSend};
use acc_sim::{Component, Ctx, SimDuration, SimTime};

use super::Attachment;

/// Self event closing a round's host-compute charge window.
struct RoundChargeDone;

/// Timing record of one collective run.
#[derive(Clone, Debug, Default)]
pub struct CollTimings {
    /// Wall time spent waiting on round transfers (wire + card).
    pub comm: SimDuration,
    /// Host compute time (`Sum` folds on the host paths, modelled local
    /// sweeps of composed workloads). Zero for pure collectives on the
    /// combined INIC path.
    pub compute: SimDuration,
    /// Completion instant.
    pub done_at: Option<SimTime>,
    /// Start instant (post-configuration).
    pub started_at: Option<SimTime>,
}

/// Per-node schedule interpreter.
pub struct CollDriver {
    label: String,
    rank: usize,
    attachment: Attachment,
    kernels: HostKernels,
    schedule: Schedule,
    /// The pre-validated card datapath (INIC attachments only).
    offload: Option<OffloadPlan>,
    state: Vec<f64>,
    input: Vec<f64>,
    round: usize,
    /// Inbound TCP bytes keyed by `(src rank, round channel)` — peers
    /// may run ahead, so future rounds accumulate here until we arrive.
    rx: BTreeMap<(usize, u16), Vec<u8>>,
    await_gather: bool,
    await_scatter: bool,
    in_charge: bool,
    /// Host-fold element count parked across the gather/scatter
    /// completion race of one INIC round.
    pending_sum_elems: u64,
    round_started: SimTime,
    charge_started: SimTime,
    phase_entered: SimTime,
    current_phase: &'static str,
    started: bool,
    done: bool,
    /// Timing decomposition.
    pub timings: CollTimings,
}

impl CollDriver {
    /// Build a driver for one rank of a compiled schedule. `offload`
    /// must be `Some` exactly when the attachment is an INIC — the
    /// caller validates the CLB budget *before* wiring the cluster, so
    /// an over-capacity schedule is a structured error, not a sim-time
    /// panic.
    pub fn new(
        rank: usize,
        p: usize,
        schedule: Schedule,
        input: Vec<f64>,
        attachment: Attachment,
        kernels: HostKernels,
        offload: Option<OffloadPlan>,
    ) -> CollDriver {
        assert!(rank < p, "rank {rank} out of range for p={p}");
        assert!(
            schedule
                .rounds
                .iter()
                .all(|r| r.sends.iter().all(|s| s.to < p) && r.recvs.iter().all(|r| r.from < p)),
            "schedule references a rank beyond p={p}"
        );
        assert_eq!(
            matches!(attachment, Attachment::Inic { .. }),
            offload.is_some(),
            "offload plan must accompany exactly the INIC attachments"
        );
        assert!(
            schedule.rounds.len() < u16::MAX as usize,
            "round index must fit the TCP channel id"
        );
        CollDriver {
            label: format!("coll-driver{rank}"),
            rank,
            attachment,
            kernels,
            schedule,
            offload,
            state: Vec::new(),
            input,
            round: 0,
            rx: BTreeMap::new(),
            await_gather: false,
            await_scatter: false,
            in_charge: false,
            pending_sum_elems: 0,
            round_started: SimTime::ZERO,
            charge_started: SimTime::ZERO,
            phase_entered: SimTime::ZERO,
            current_phase: "init",
            started: false,
            done: false,
            timings: CollTimings::default(),
        }
    }

    /// The rank's output slice of the final state, once done.
    pub fn result(&self) -> Vec<f64> {
        assert!(self.done, "driver not finished");
        self.state[self.schedule.output.clone()].to_vec()
    }

    /// Whether the run completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn phase_name(&self) -> &'static str {
        self.current_phase
    }

    /// Phase snapshot for the liveness layer.
    pub fn progress(&self) -> super::DriverProgress {
        super::DriverProgress {
            rank: self.rank,
            phase: self.phase_name(),
            entered: self.phase_entered,
            paused: false,
            done: self.done,
        }
    }

    fn current_round(&self) -> &Round {
        &self.schedule.rounds[self.round]
    }

    fn stream(&self) -> u32 {
        self.round as u32 + 1
    }

    fn begin(&mut self, ctx: &mut Ctx) {
        self.timings.started_at = Some(ctx.now());
        self.started = true;
        self.state = self.schedule.init_state(&self.input);
        self.phase_entered = ctx.now();
        self.start_round(ctx);
    }

    /// Enter rounds from `self.round` until one blocks on the network
    /// or a charge window, or the schedule ends.
    fn start_round(&mut self, ctx: &mut Ctx) {
        loop {
            if self.round == self.schedule.rounds.len() {
                self.finish(ctx);
                return;
            }
            let phase = self.current_round().phase;
            if phase != self.current_phase {
                self.current_phase = phase;
                self.phase_entered = ctx.now();
            }
            let round = self.current_round().clone();
            Schedule::apply_copies(&round, &mut self.state);
            if round.sends.is_empty() && round.recvs.is_empty() {
                // Pure local round: charge any modelled compute and move
                // on; an entirely empty round falls straight through.
                if round.compute_elems > 0 {
                    self.charge(ctx, self.sweep_time(round.compute_elems));
                    return;
                }
                self.round += 1;
                continue;
            }
            self.round_started = ctx.now();
            match &self.attachment {
                Attachment::Tcp { .. } => self.issue_tcp_round(&round, ctx),
                Attachment::Inic { .. } => self.issue_inic_round(&round, ctx),
            }
            return;
        }
    }

    /// Modelled local-sweep charge (memory-bound streaming over the
    /// round's `compute_elems` doubles).
    fn sweep_time(&self, elems: usize) -> SimDuration {
        self.kernels.reduce_time(elems as u64, 1)
    }

    fn charge(&mut self, ctx: &mut Ctx, t: SimDuration) {
        self.in_charge = true;
        self.charge_started = ctx.now();
        ctx.self_in(t, RoundChargeDone);
    }

    // ---- host-TCP path -------------------------------------------------

    fn issue_tcp_round(&mut self, round: &Round, ctx: &mut Ctx) {
        let (nic, macs) = match &self.attachment {
            Attachment::Tcp { nic, macs } => (*nic, macs.clone()),
            Attachment::Inic { .. } => unreachable!("TCP round on an INIC attachment"),
        };
        let chan = self.round as u16;
        for send in &round.sends {
            ctx.send_now(
                nic,
                TcpSend {
                    peer: macs[send.to],
                    chan,
                    data: f64s_to_bytes(&Schedule::gather(&send.ranges, &self.state)),
                },
            );
        }
        // Peers running ahead may already have delivered everything.
        self.try_complete_tcp_round(ctx);
    }

    fn try_complete_tcp_round(&mut self, ctx: &mut Ctx) {
        if self.done || !self.started || self.in_charge || !self.is_tcp() {
            return;
        }
        if self.round == self.schedule.rounds.len() {
            return;
        }
        let chan = self.round as u16;
        let round = self.current_round().clone();
        let complete = round.recvs.iter().all(|r| {
            let want = ranges_elems(&r.ranges) * 8;
            self.rx
                .get(&(r.from, chan))
                .is_some_and(|b| b.len() >= want)
        });
        if !complete {
            return;
        }
        let mut sum_elems = 0u64;
        for recv in &round.recvs {
            let bytes = self
                .rx
                .remove(&(recv.from, chan))
                .expect("completeness checked");
            assert_eq!(
                bytes.len(),
                ranges_elems(&recv.ranges) * 8,
                "{}: round {} message from rank {} over-delivered",
                self.label,
                self.round,
                recv.from
            );
            if recv.op == RecvOp::Sum {
                sum_elems += ranges_elems(&recv.ranges) as u64;
            }
            Schedule::apply_recv(recv, &bytes_to_f64s(&bytes), &mut self.state);
        }
        self.close_round(ctx, &round, sum_elems);
    }

    fn is_tcp(&self) -> bool {
        matches!(self.attachment, Attachment::Tcp { .. })
    }

    // ---- INIC paths ----------------------------------------------------

    /// Whether this round's `Sum` fold runs in the card datapath.
    fn card_folds(&self) -> bool {
        self.offload.as_ref().is_some_and(|plan| plan.needs_reduce)
    }

    fn issue_inic_round(&mut self, round: &Round, ctx: &mut Ctx) {
        let (card, macs) = match &self.attachment {
            Attachment::Inic { card, macs, .. } => (*card, macs.clone()),
            Attachment::Tcp { .. } => unreachable!("INIC round on a TCP attachment"),
        };
        let stream = self.stream();
        let sum_round = round.recvs.iter().any(|r| r.op == RecvOp::Sum);
        let mut data = Vec::new();
        let mut parts: Vec<(u32, usize)> = Vec::new();
        for send in &round.sends {
            let bytes = f64s_to_bytes(&Schedule::gather(&send.ranges, &self.state));
            parts.push((send.to as u32, bytes.len()));
            data.extend_from_slice(&bytes);
        }
        if sum_round && self.card_folds() {
            // One fused gather: the card folds the peer stream against
            // this rank's looped-back contribution, element-wise.
            assert_eq!(
                round.recvs.len(),
                1,
                "a card-folded round carries exactly one Sum receive"
            );
            let recv = &round.recvs[0];
            let elems = ranges_elems(&recv.ranges);
            let own = f64s_to_bytes(&Schedule::gather(&recv.ranges, &self.state));
            parts.push((self.rank as u32, own.len()));
            data.extend_from_slice(&own);
            ctx.send_now(
                card,
                InicExpect {
                    stream,
                    kind: GatherKind::ReduceF64 { elems },
                    sources: vec![
                        (recv.from as u32, Some(elems * 8)),
                        (self.rank as u32, Some(elems * 8)),
                    ],
                },
            );
            self.await_gather = true;
        } else if !round.recvs.is_empty() {
            // Raw gather, one inbound stream per source; the card hands
            // back the concatenation sorted by source rank.
            let mut froms: Vec<u32> = round.recvs.iter().map(|r| r.from as u32).collect();
            froms.sort_unstable();
            froms.dedup();
            assert_eq!(
                froms.len(),
                round.recvs.len(),
                "raw-gather rounds receive at most one message per source"
            );
            ctx.send_now(
                card,
                InicExpect {
                    stream,
                    kind: GatherKind::Raw,
                    sources: round
                        .recvs
                        .iter()
                        .map(|r| (r.from as u32, Some(ranges_elems(&r.ranges) * 8)))
                        .collect(),
                },
            );
            self.await_gather = true;
        }
        if !parts.is_empty() {
            ctx.send_now(
                card,
                InicScatter {
                    stream,
                    kind: ScatterKind::Unicast { parts },
                    data,
                    dests: macs,
                },
            );
            self.await_scatter = true;
        }
        debug_assert!(
            self.await_gather || self.await_scatter,
            "a non-local round must touch the card"
        );
    }

    fn on_gather_complete(&mut self, g: InicGatherComplete, ctx: &mut Ctx) {
        assert_eq!(g.stream, self.stream(), "{}: stale gather", self.label);
        assert!(self.await_gather, "{}: unexpected gather", self.label);
        self.await_gather = false;
        let round = self.current_round().clone();
        let sum_round = round.recvs.iter().any(|r| r.op == RecvOp::Sum);
        let mut host_sum_elems = 0u64;
        if sum_round && self.card_folds() {
            // The card already folded own + peer; overwrite in place.
            let recv = &round.recvs[0];
            let folded = RecvSpec {
                from: recv.from,
                ranges: recv.ranges.clone(),
                op: RecvOp::Copy,
            };
            Schedule::apply_recv(&folded, &bytes_to_f64s(&g.data), &mut self.state);
        } else {
            // Raw concatenation sorted by source rank; slice it back to
            // the schedule's receives and fold on the host.
            let mut order: Vec<usize> = (0..round.recvs.len()).collect();
            order.sort_by_key(|&i| round.recvs[i].from);
            let bounds = g.bucket_bounds.unwrap_or_else(|| vec![g.data.len()]);
            assert_eq!(bounds.len(), round.recvs.len(), "one bucket per source");
            let mut at = 0usize;
            for (slot, &i) in order.iter().enumerate() {
                let recv = &round.recvs[i];
                let bytes = &g.data[at..bounds[slot]];
                at = bounds[slot];
                if recv.op == RecvOp::Sum {
                    host_sum_elems += ranges_elems(&recv.ranges) as u64;
                }
                Schedule::apply_recv(recv, &bytes_to_f64s(bytes), &mut self.state);
            }
        }
        self.maybe_close_inic_round(ctx, host_sum_elems);
    }

    fn maybe_close_inic_round(&mut self, ctx: &mut Ctx, host_sum_elems: u64) {
        self.pending_sum_elems += host_sum_elems;
        if self.await_gather || self.await_scatter {
            return;
        }
        let round = self.current_round().clone();
        let sum_elems = std::mem::take(&mut self.pending_sum_elems);
        self.close_round(ctx, &round, sum_elems);
    }

    // ---- shared round epilogue ----------------------------------------

    /// Transfers done: account comm, charge host compute (folds + the
    /// modelled sweep), then advance.
    fn close_round(&mut self, ctx: &mut Ctx, round: &Round, host_sum_elems: u64) {
        self.timings.comm += ctx.now().since(self.round_started);
        let mut t = SimDuration::ZERO;
        if host_sum_elems > 0 {
            t += self.kernels.reduce_time(host_sum_elems, 2);
        }
        if round.compute_elems > 0 {
            t += self.sweep_time(round.compute_elems);
        }
        if t > SimDuration::ZERO {
            self.charge(ctx, t);
        } else {
            self.round += 1;
            self.start_round(ctx);
        }
    }

    fn finish(&mut self, ctx: &mut Ctx) {
        self.timings.done_at = Some(ctx.now());
        self.done = true;
        self.current_phase = "done";
        self.phase_entered = ctx.now();
        assert!(
            self.rx.is_empty(),
            "{}: leftover peer bytes at completion",
            self.label
        );
        ctx.stats().counter("cluster", "drivers_done").inc();
    }
}

impl Component for CollDriver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            match (&self.attachment, &self.offload) {
                (Attachment::Inic { card, .. }, Some(plan)) => {
                    let card = *card;
                    ctx.send_now(
                        card,
                        InicConfigure {
                            bitstream: plan.bitstream.clone(),
                        },
                    );
                }
                _ => self.begin(ctx),
            }
            return;
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Ok(cfg) => {
                cfg.result.unwrap_or_else(|e| {
                    panic!("{}: collective bitstream rejected: {e}", self.label)
                });
                self.begin(ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<TcpDelivered>() {
            Ok(d) => {
                let src = self
                    .attachment
                    .resolve_src(d.peer)
                    .expect("delivery from an unknown peer");
                self.rx
                    .entry((src, d.chan))
                    .or_default()
                    .extend_from_slice(&d.data);
                self.try_complete_tcp_round(ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Ok(g) => {
                self.on_gather_complete(*g, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicScatterDone>() {
            Ok(s) => {
                assert_eq!(s.stream, self.stream(), "{}: stale scatter", self.label);
                assert!(self.await_scatter, "{}: unexpected scatter", self.label);
                self.await_scatter = false;
                self.maybe_close_inic_round(ctx, 0);
                return;
            }
            Err(ev) => ev,
        };
        if ev.downcast_ref::<RoundChargeDone>().is_some() {
            assert!(self.in_charge, "{}: stray charge completion", self.label);
            self.in_charge = false;
            self.timings.compute += ctx.now().since(self.charge_started);
            self.round += 1;
            self.start_round(ctx);
            // A TCP peer may have pre-delivered the next round.
            self.try_complete_tcp_round(ctx);
            return;
        }
        if ev.downcast_ref::<super::CardFailed>().is_some() {
            // The collective engine has no degradation path (yet): the
            // run fails to quiesce and the liveness layer attributes it.
            return;
        }
        panic!("{}: unknown event", self.label);
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        if self.done {
            return None;
        }
        Some(format!(
            "rank {} in {} (round {}/{}, gather={}, scatter={}, charge={})",
            self.rank,
            self.phase_name(),
            self.round,
            self.schedule.rounds.len(),
            self.await_gather,
            self.await_scatter,
            self.in_charge,
        ))
    }
}
