//! The collective-engine driver — one rank of any `acc-coll` schedule.
//!
//! Where the FFT and sort drivers hard-code their application's
//! exchange pattern, this driver *interprets* a per-rank
//! [`Schedule`](acc_coll::Schedule) compiled by `acc-coll`'s builders:
//! the same rounds drive all three execution paths, so adding an
//! algorithm to the engine needs no driver changes at all.
//!
//! * **Host-TCP path** (commodity technologies): each round's sends go
//!   out as one TCP message per peer on a per-round channel; `Sum`
//!   receives fold on the host at the calibrated streaming-reduction
//!   rate.
//! * **Combined INIC path**: the card is configured with the
//!   [`Bitstream::collective`](acc_fpga::Bitstream::collective)
//!   datapath (stream router sized to the fan-out, `ReduceSum` only
//!   when the schedule folds data). A `Sum` round becomes a `ReduceF64`
//!   gather — the card accumulates the peer's stream against this
//!   rank's looped-back contribution and only the folded result crosses
//!   to the host, so the host does **zero arithmetic**. Copy/Discard
//!   rounds are raw gathers; sends ride a [`ScatterKind::Unicast`]
//!   per-destination scatter.
//! * **Protocol-only INIC path**: raw gathers and unicast scatters —
//!   the wire protocol is offloaded, the arithmetic stays on the host.
//!
//! Rounds are strictly ordered on each rank: the driver never issues
//! round `t + 1` card requests before round `t`'s gather and scatter
//! both completed, so per-round streams are announced exactly once and
//! stale completions cannot exist within an epoch. Ranks still slide
//! against each other — the cards buffer early packets until the local
//! rank announces the stream.
//!
//! # Fault recovery
//!
//! The driver survives mid-schedule card deaths under every
//! [`RecoveryPolicy`], mirroring the FFT/sort drivers' protocol:
//!
//! * **Round checkpoints** — under [`RecoveryPolicy::Checkpointed`]
//!   every completed round snapshots the working state, so a resume
//!   re-enters at the cluster-wide minimum completed round instead of
//!   from scratch.
//! * **Failover epochs** — every `CardFailed` bumps an epoch counter
//!   on *every* rank (the broadcast is cluster-wide), and streams,
//!   TCP channels and self-timers are epoch-namespaced, so pre-failure
//!   traffic can never complete a post-failure round.
//! * **Mixed-technology rounds** — after a rank-local failover the
//!   healthy ranks keep their cards and split each remaining round via
//!   [`acc_coll::recovery::split_round`]: legs touching the dead rank
//!   ride the fallback `TcpHostNic`, and a combined-mode fold whose
//!   source died falls back to host arithmetic.
//! * **Config-window parking** — a failure landing inside the 60 ms
//!   bitstream load parks the resume until `InicConfigured` arrives,
//!   exactly like the FFT driver.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

use acc_coll::plan::{ranges_elems, RecvSpec, Round};
use acc_coll::recovery::{split_round, RoundLegs};
use acc_coll::{bytes_to_f64s, f64s_to_bytes, OffloadPlan, RecvOp, Schedule};
use acc_fpga::{
    GatherKind, InicConfigure, InicConfigured, InicExpect, InicGatherComplete, InicRecover,
    InicScatter, InicScatterDone, ScatterKind,
};
use acc_host::HostKernels;
use acc_proto::{TcpDelivered, TcpSend};
use acc_sim::{Component, ComponentId, Ctx, SimDuration, SimTime};

use super::{
    Attachment, CardFailed, Deferred, FaultCtl, RecoveryPolicy, RecoveryReport, ResumeAt,
    RECOVERY_LATENCY,
};

/// Self event closing a round's host-compute charge window, tagged
/// with the failover epoch that armed it (stale epochs are dropped).
struct RoundChargeDone(u64);

/// Timing record of one collective run.
#[derive(Clone, Debug, Default)]
pub struct CollTimings {
    /// Wall time spent waiting on round transfers (wire + card).
    pub comm: SimDuration,
    /// Host compute time (`Sum` folds on the host paths, modelled local
    /// sweeps of composed workloads). Zero for pure collectives on the
    /// combined INIC path.
    pub compute: SimDuration,
    /// Completion instant.
    pub done_at: Option<SimTime>,
    /// Start instant (post-configuration).
    pub started_at: Option<SimTime>,
}

/// Per-node schedule interpreter.
pub struct CollDriver {
    label: String,
    rank: usize,
    attachment: Attachment,
    kernels: HostKernels,
    schedule: Schedule,
    /// The pre-validated card datapath (INIC attachments only).
    offload: Option<OffloadPlan>,
    state: Vec<f64>,
    input: Vec<f64>,
    round: usize,
    /// Inbound TCP bytes keyed by `(src rank, round channel)` — peers
    /// may run ahead, so future rounds accumulate here until we arrive.
    rx: BTreeMap<(usize, u16), Vec<u8>>,
    await_gather: bool,
    await_scatter: bool,
    /// Whether the current INIC round still waits on fallback-TCP legs
    /// (receives rerouted around a dead peer).
    await_tcp: bool,
    in_charge: bool,
    /// Host-fold element count parked across the gather/scatter/TCP
    /// completion race of one INIC round.
    pending_sum_elems: u64,
    round_started: SimTime,
    charge_started: SimTime,
    phase_entered: SimTime,
    current_phase: &'static str,
    started: bool,
    done: bool,
    /// Fault-handling configuration (stall windows, recovery policy,
    /// coordinator). Default on clean runs.
    fault_ctl: FaultCtl,
    /// Failover epoch: bumped once per processed `CardFailed`, on every
    /// rank, so streams/channels/timers from before a failure can never
    /// satisfy a round issued after it.
    epoch: u64,
    /// Whether *this* rank abandoned its card for the fallback NIC.
    failed_over: bool,
    /// Ranks whose cards died (rank-local recovery only).
    dead: BTreeSet<usize>,
    /// Round-level checkpoints: completed-round count → state snapshot.
    /// Armed only under the checkpointed policy with a coordinator.
    ckpts: BTreeMap<u32, Vec<f64>>,
    /// Parked awaiting the coordinator's `ResumeAt`.
    paused: bool,
    /// Whether the card finished loading its bitstream (a resume that
    /// beats `InicConfigured` parks in `pending_resume`).
    configured: bool,
    pending_resume: Option<ResumeAt>,
    /// The round the last coordinated resume re-entered at.
    resumed_from: Option<u32>,
    /// Guards the cluster-wide `drivers_done` counter across restarts.
    reported_done: bool,
    /// Timing decomposition.
    pub timings: CollTimings,
}

impl CollDriver {
    /// Build a driver for one rank of a compiled schedule. `offload`
    /// must be `Some` exactly when the attachment is an INIC — the
    /// caller validates the CLB budget *before* wiring the cluster, so
    /// an over-capacity schedule is a structured error, not a sim-time
    /// panic.
    pub fn new(
        rank: usize,
        p: usize,
        schedule: Schedule,
        input: Vec<f64>,
        attachment: Attachment,
        kernels: HostKernels,
        offload: Option<OffloadPlan>,
    ) -> CollDriver {
        assert!(rank < p, "rank {rank} out of range for p={p}");
        assert!(
            schedule
                .rounds
                .iter()
                .all(|r| r.sends.iter().all(|s| s.to < p) && r.recvs.iter().all(|r| r.from < p)),
            "schedule references a rank beyond p={p}"
        );
        assert_eq!(
            matches!(attachment, Attachment::Inic { .. }),
            offload.is_some(),
            "offload plan must accompany exactly the INIC attachments"
        );
        assert!(
            schedule.rounds.len() < u16::MAX as usize,
            "round index must fit the TCP channel id"
        );
        CollDriver {
            label: format!("coll-driver{rank}"),
            rank,
            attachment,
            kernels,
            schedule,
            offload,
            state: Vec::new(),
            input,
            round: 0,
            rx: BTreeMap::new(),
            await_gather: false,
            await_scatter: false,
            await_tcp: false,
            in_charge: false,
            pending_sum_elems: 0,
            round_started: SimTime::ZERO,
            charge_started: SimTime::ZERO,
            phase_entered: SimTime::ZERO,
            current_phase: "init",
            started: false,
            done: false,
            fault_ctl: FaultCtl::default(),
            epoch: 0,
            failed_over: false,
            dead: BTreeSet::new(),
            ckpts: BTreeMap::new(),
            paused: false,
            configured: false,
            pending_resume: None,
            resumed_from: None,
            reported_done: false,
            timings: CollTimings::default(),
        }
    }

    /// Attach the fault-handling configuration (builder style).
    #[must_use]
    pub fn with_fault_ctl(mut self, ctl: FaultCtl) -> CollDriver {
        self.fault_ctl = ctl;
        self
    }

    /// The rank's output slice of the final state, once done.
    pub fn result(&self) -> Vec<f64> {
        assert!(self.done, "driver not finished");
        self.state[self.schedule.output.clone()].to_vec()
    }

    /// Whether the run completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Whether this rank abandoned its card for the commodity fallback.
    pub fn degraded(&self) -> bool {
        self.failed_over
    }

    /// The round the last coordinated resume re-entered at, if any.
    pub fn resumed_from(&self) -> Option<u32> {
        self.resumed_from
    }

    fn phase_name(&self) -> &'static str {
        self.current_phase
    }

    /// Phase snapshot for the liveness layer.
    pub fn progress(&self) -> super::DriverProgress {
        super::DriverProgress {
            rank: self.rank,
            phase: self.phase_name(),
            entered: self.phase_entered,
            paused: self.paused,
            done: self.done,
        }
    }

    fn current_round(&self) -> &Round {
        &self.schedule.rounds[self.round]
    }

    /// Epoch-namespaced round tag: the clean run (epoch 0) reduces to
    /// the bare round index, so its wire traffic is byte-identical to
    /// the pre-recovery engine.
    fn round_tag(&self) -> u64 {
        let tag = self.epoch * (self.schedule.rounds.len() as u64 + 1) + self.round as u64;
        assert!(
            tag < u16::MAX as u64,
            "{}: epoch {} round {} overflows the channel id",
            self.label,
            self.epoch,
            self.round
        );
        tag
    }

    fn stream(&self) -> u32 {
        self.round_tag() as u32 + 1
    }

    fn chan(&self) -> u16 {
        self.round_tag() as u16
    }

    /// Whether round checkpoints are being captured.
    fn ckpt_armed(&self) -> bool {
        self.fault_ctl.coordinator.is_some()
            && self.fault_ctl.policy == RecoveryPolicy::Checkpointed
    }

    /// Rounds this rank can prove complete: the resume point it reports
    /// to the coordinator. Without checkpoints (rank-local policy) the
    /// honest answer is 0 — a from-scratch restart.
    fn completed_round(&self) -> u32 {
        if self.done {
            return self.schedule.rounds.len() as u32;
        }
        self.ckpts.keys().next_back().copied().unwrap_or(0)
    }

    /// Advance past a completed round, snapshotting the state when
    /// checkpoints are armed.
    fn advance_round(&mut self) {
        self.round += 1;
        if self.ckpt_armed() {
            self.ckpts.insert(self.round as u32, self.state.clone());
        }
    }

    fn begin(&mut self, ctx: &mut Ctx) {
        self.timings.started_at = Some(ctx.now());
        self.started = true;
        self.state = self.schedule.init_state(&self.input);
        self.phase_entered = ctx.now();
        self.start_round(ctx);
    }

    /// Enter rounds from `self.round` until one blocks on the network
    /// or a charge window, or the schedule ends.
    fn start_round(&mut self, ctx: &mut Ctx) {
        loop {
            if self.round == self.schedule.rounds.len() {
                self.finish(ctx);
                return;
            }
            let phase = self.current_round().phase;
            if phase != self.current_phase {
                self.current_phase = phase;
                self.phase_entered = ctx.now();
            }
            let round = self.current_round().clone();
            Schedule::apply_copies(&round, &mut self.state);
            if round.sends.is_empty() && round.recvs.is_empty() {
                // Pure local round: charge any modelled compute and move
                // on; an entirely empty round falls straight through.
                if round.compute_elems > 0 {
                    self.charge(ctx, self.sweep_time(round.compute_elems));
                    return;
                }
                self.advance_round();
                continue;
            }
            self.round_started = ctx.now();
            match &self.attachment {
                Attachment::Tcp { .. } => self.issue_tcp_round(&round, ctx),
                Attachment::Inic { .. } => self.issue_inic_round(&round, ctx),
            }
            return;
        }
    }

    /// Modelled local-sweep charge (memory-bound streaming over the
    /// round's `compute_elems` doubles).
    fn sweep_time(&self, elems: usize) -> SimDuration {
        self.kernels.reduce_time(elems as u64, 1)
    }

    fn charge(&mut self, ctx: &mut Ctx, t: SimDuration) {
        self.in_charge = true;
        self.charge_started = ctx.now();
        ctx.self_in(t, RoundChargeDone(self.epoch));
    }

    // ---- host-TCP path -------------------------------------------------

    fn issue_tcp_round(&mut self, round: &Round, ctx: &mut Ctx) {
        let (nic, macs) = match &self.attachment {
            Attachment::Tcp { nic, macs } => (*nic, macs.clone()),
            Attachment::Inic { .. } => unreachable!("TCP round on an INIC attachment"),
        };
        let chan = self.chan();
        for send in &round.sends {
            ctx.send_now(
                nic,
                TcpSend {
                    peer: macs[send.to],
                    chan,
                    data: f64s_to_bytes(&Schedule::gather(&send.ranges, &self.state)),
                },
            );
        }
        // Peers running ahead may already have delivered everything.
        self.try_complete_tcp_round(ctx);
    }

    fn try_complete_tcp_round(&mut self, ctx: &mut Ctx) {
        if self.done || !self.started || self.paused || self.in_charge || !self.is_tcp() {
            return;
        }
        if self.round == self.schedule.rounds.len() {
            return;
        }
        let chan = self.chan();
        let round = self.current_round().clone();
        let complete = round.recvs.iter().all(|r| {
            let want = ranges_elems(&r.ranges) * 8;
            self.rx
                .get(&(r.from, chan))
                .is_some_and(|b| b.len() >= want)
        });
        if !complete {
            return;
        }
        let mut sum_elems = 0u64;
        for recv in &round.recvs {
            let bytes = self
                .rx
                .remove(&(recv.from, chan))
                .expect("completeness checked");
            assert_eq!(
                bytes.len(),
                ranges_elems(&recv.ranges) * 8,
                "{}: round {} message from rank {} over-delivered",
                self.label,
                self.round,
                recv.from
            );
            if recv.op == RecvOp::Sum {
                sum_elems += ranges_elems(&recv.ranges) as u64;
            }
            Schedule::apply_recv(recv, &bytes_to_f64s(&bytes), &mut self.state);
        }
        self.close_round(ctx, &round, sum_elems);
    }

    fn is_tcp(&self) -> bool {
        matches!(self.attachment, Attachment::Tcp { .. })
    }

    // ---- INIC paths ----------------------------------------------------

    /// Whether the configured bitstream carries a `ReduceSum` stage.
    fn card_folds(&self) -> bool {
        self.offload.as_ref().is_some_and(|plan| plan.needs_reduce)
    }

    /// The current round's transport partition. With no dead peers this
    /// reproduces the round exactly (everything on the card).
    fn current_legs(&self) -> RoundLegs {
        split_round(self.current_round(), &self.dead, self.card_folds())
    }

    fn issue_inic_round(&mut self, round: &Round, ctx: &mut Ctx) {
        let (card, macs) = match &self.attachment {
            Attachment::Inic { card, macs, .. } => (*card, macs.clone()),
            Attachment::Tcp { .. } => unreachable!("INIC round on a TCP attachment"),
        };
        let legs = split_round(round, &self.dead, self.card_folds());
        let stream = self.stream();
        let mut data = Vec::new();
        let mut parts: Vec<(u32, usize)> = Vec::new();
        for send in &legs.card_sends {
            let bytes = f64s_to_bytes(&Schedule::gather(&send.ranges, &self.state));
            parts.push((send.to as u32, bytes.len()));
            data.extend_from_slice(&bytes);
        }
        if legs.card_fold {
            // One fused gather: the card folds the peer stream against
            // this rank's looped-back contribution, element-wise.
            let recv = &legs.card_recvs[0];
            let elems = ranges_elems(&recv.ranges);
            let own = f64s_to_bytes(&Schedule::gather(&recv.ranges, &self.state));
            parts.push((self.rank as u32, own.len()));
            data.extend_from_slice(&own);
            ctx.send_now(
                card,
                InicExpect {
                    stream,
                    kind: GatherKind::ReduceF64 { elems },
                    sources: vec![
                        (recv.from as u32, Some(elems * 8)),
                        (self.rank as u32, Some(elems * 8)),
                    ],
                },
            );
            self.await_gather = true;
        } else if !legs.card_recvs.is_empty() {
            // Raw gather, one inbound stream per source; the card hands
            // back the concatenation sorted by source rank.
            let mut froms: Vec<u32> = legs.card_recvs.iter().map(|r| r.from as u32).collect();
            froms.sort_unstable();
            froms.dedup();
            assert_eq!(
                froms.len(),
                legs.card_recvs.len(),
                "raw-gather rounds receive at most one message per source"
            );
            ctx.send_now(
                card,
                InicExpect {
                    stream,
                    kind: GatherKind::Raw,
                    sources: legs
                        .card_recvs
                        .iter()
                        .map(|r| (r.from as u32, Some(ranges_elems(&r.ranges) * 8)))
                        .collect(),
                },
            );
            self.await_gather = true;
        }
        if !parts.is_empty() {
            ctx.send_now(
                card,
                InicScatter {
                    stream,
                    kind: ScatterKind::Unicast { parts },
                    data,
                    dests: macs,
                },
            );
            self.await_scatter = true;
        }
        // Legs around dead peers ride the commodity fallback NIC.
        if legs.uses_tcp() {
            let (fb_nic, fb_macs) = match &self.attachment {
                Attachment::Inic {
                    fallback: Some(fb), ..
                } => fb.clone(),
                _ => panic!(
                    "{}: degraded round without a wired fallback path",
                    self.label
                ),
            };
            let chan = self.chan();
            for send in &legs.tcp_sends {
                ctx.send_now(
                    fb_nic,
                    TcpSend {
                        peer: fb_macs[send.to],
                        chan,
                        data: f64s_to_bytes(&Schedule::gather(&send.ranges, &self.state)),
                    },
                );
            }
            self.await_tcp = !legs.tcp_recvs.is_empty();
        }
        if self.epoch == 0 {
            debug_assert!(
                self.await_gather || self.await_scatter,
                "a non-local round must touch the card"
            );
        }
        if !(self.await_gather || self.await_scatter || self.await_tcp) {
            // Every counterparty is dead and nothing is expected back:
            // the round closes on the spot.
            let round = self.current_round().clone();
            let sum = std::mem::take(&mut self.pending_sum_elems);
            self.close_round(ctx, &round, sum);
            return;
        }
        // A degraded peer running ahead may have pre-delivered its legs.
        self.try_complete_inic_tcp_legs(ctx);
    }

    /// Complete the fallback-TCP legs of the current INIC round, if all
    /// their bytes have arrived.
    fn try_complete_inic_tcp_legs(&mut self, ctx: &mut Ctx) {
        if !self.await_tcp || self.done || self.paused || self.in_charge {
            return;
        }
        let chan = self.chan();
        let legs = self.current_legs();
        let complete = legs.tcp_recvs.iter().all(|r| {
            let want = ranges_elems(&r.ranges) * 8;
            self.rx
                .get(&(r.from, chan))
                .is_some_and(|b| b.len() >= want)
        });
        if !complete {
            return;
        }
        let mut host_sum_elems = 0u64;
        for recv in &legs.tcp_recvs {
            let bytes = self
                .rx
                .remove(&(recv.from, chan))
                .expect("completeness checked");
            assert_eq!(
                bytes.len(),
                ranges_elems(&recv.ranges) * 8,
                "{}: round {} fallback leg from rank {} over-delivered",
                self.label,
                self.round,
                recv.from
            );
            if recv.op == RecvOp::Sum {
                host_sum_elems += ranges_elems(&recv.ranges) as u64;
            }
            Schedule::apply_recv(recv, &bytes_to_f64s(&bytes), &mut self.state);
        }
        self.await_tcp = false;
        self.maybe_close_inic_round(ctx, host_sum_elems);
    }

    fn on_gather_complete(&mut self, g: InicGatherComplete, ctx: &mut Ctx) {
        if self.epoch > 0 && (self.done || g.stream != self.stream() || !self.await_gather) {
            // A pre-failover stream completing against a dead epoch.
            return;
        }
        assert_eq!(g.stream, self.stream(), "{}: stale gather", self.label);
        assert!(self.await_gather, "{}: unexpected gather", self.label);
        self.await_gather = false;
        let legs = self.current_legs();
        let mut host_sum_elems = 0u64;
        if legs.card_fold {
            // The card already folded own + peer; overwrite in place.
            let recv = &legs.card_recvs[0];
            let folded = RecvSpec {
                from: recv.from,
                ranges: recv.ranges.clone(),
                op: RecvOp::Copy,
            };
            Schedule::apply_recv(&folded, &bytes_to_f64s(&g.data), &mut self.state);
        } else {
            // Raw concatenation sorted by source rank; slice it back to
            // the schedule's receives and fold on the host.
            let mut order: Vec<usize> = (0..legs.card_recvs.len()).collect();
            order.sort_by_key(|&i| legs.card_recvs[i].from);
            let bounds = g.bucket_bounds.unwrap_or_else(|| vec![g.data.len()]);
            assert_eq!(bounds.len(), legs.card_recvs.len(), "one bucket per source");
            let mut at = 0usize;
            for (slot, &i) in order.iter().enumerate() {
                let recv = &legs.card_recvs[i];
                let bytes = &g.data[at..bounds[slot]];
                at = bounds[slot];
                if recv.op == RecvOp::Sum {
                    host_sum_elems += ranges_elems(&recv.ranges) as u64;
                }
                Schedule::apply_recv(recv, &bytes_to_f64s(bytes), &mut self.state);
            }
        }
        self.maybe_close_inic_round(ctx, host_sum_elems);
    }

    fn maybe_close_inic_round(&mut self, ctx: &mut Ctx, host_sum_elems: u64) {
        self.pending_sum_elems += host_sum_elems;
        if self.await_gather || self.await_scatter || self.await_tcp {
            return;
        }
        let round = self.current_round().clone();
        let sum_elems = std::mem::take(&mut self.pending_sum_elems);
        self.close_round(ctx, &round, sum_elems);
    }

    // ---- shared round epilogue ----------------------------------------

    /// Transfers done: account comm, charge host compute (folds + the
    /// modelled sweep), then advance.
    fn close_round(&mut self, ctx: &mut Ctx, round: &Round, host_sum_elems: u64) {
        self.timings.comm += ctx.now().since(self.round_started);
        let mut t = SimDuration::ZERO;
        if host_sum_elems > 0 {
            t += self.kernels.reduce_time(host_sum_elems, 2);
        }
        if round.compute_elems > 0 {
            t += self.sweep_time(round.compute_elems);
        }
        if t > SimDuration::ZERO {
            self.charge(ctx, t);
        } else {
            self.advance_round();
            self.start_round(ctx);
        }
    }

    fn finish(&mut self, ctx: &mut Ctx) {
        self.timings.done_at = Some(ctx.now());
        self.done = true;
        self.current_phase = "done";
        self.phase_entered = ctx.now();
        if self.epoch == 0 {
            // Post-failover, bytes parked on dead-epoch channels are
            // expected leftovers; on a clean run they are a protocol bug.
            assert!(
                self.rx.is_empty(),
                "{}: leftover peer bytes at completion",
                self.label
            );
        }
        if !self.reported_done {
            self.reported_done = true;
            ctx.stats().counter("cluster", "drivers_done").inc();
        }
    }

    // ---- card-failure recovery ----------------------------------------

    fn on_card_failed(&mut self, node: u32, ctx: &mut Ctx) {
        match self.fault_ctl.coordinator {
            None => self.full_restart_failover(node, ctx),
            Some(coord) => self.rank_local_failover(node, coord, ctx),
        }
    }

    /// Abandon the card and restart the whole schedule over the
    /// fallback NIC (every rank does this, healthy cards included).
    fn full_restart_failover(&mut self, node: u32, ctx: &mut Ctx) {
        if self.failed_over {
            return;
        }
        let (nic, macs) = match &self.attachment {
            Attachment::Inic {
                fallback: Some((nic, macs)),
                ..
            } => (*nic, macs.clone()),
            Attachment::Inic { .. } => {
                panic!("{}: card failure without a wired fallback path", self.label)
            }
            // Already on the commodity path: a card death elsewhere in
            // the plan cannot degrade this rank further.
            Attachment::Tcp { .. } => return,
        };
        // Before abandoning a still-healthy card, tell it the peer is
        // dead and cancel the in-flight stream: otherwise its
        // retransmit backoff into the void outlives the run deadline.
        if let Attachment::Inic {
            card, macs: own, ..
        } = &self.attachment
        {
            if self.rank != node as usize {
                let abort_stream = (self.await_gather || self.await_scatter).then(|| self.stream());
                ctx.send_now(
                    *card,
                    InicRecover {
                        dead: own[node as usize],
                        abort_stream,
                    },
                );
            }
        }
        ctx.stats().counter(&self.label, "card_failovers").inc();
        self.failed_over = true;
        self.epoch += 1;
        self.attachment = Attachment::Tcp { nic, macs };
        self.rx.clear();
        self.await_gather = false;
        self.await_scatter = false;
        self.await_tcp = false;
        self.in_charge = false;
        self.pending_sum_elems = 0;
        self.ckpts.clear();
        self.done = false;
        let started = self.timings.started_at;
        self.timings = CollTimings::default();
        self.timings.started_at = started.or(Some(ctx.now()));
        self.round = 0;
        self.state = self.schedule.init_state(&self.input);
        self.current_phase = "init";
        self.phase_entered = ctx.now();
        self.started = true;
        self.start_round(ctx);
    }

    /// Rank-local failover: only the dead rank degrades; healthy ranks
    /// purge the casualty from their cards, and everyone reports its
    /// resumable round to the coordinator.
    fn rank_local_failover(&mut self, node: u32, coord: ComponentId, ctx: &mut Ctx) {
        let node_idx = node as usize;
        if !self.dead.insert(node_idx) {
            return;
        }
        // Streams announced before the bump can never complete once the
        // peer set changed; tell the card which one to abort.
        let abort_stream = (self.await_gather || self.await_scatter).then(|| self.stream());
        self.epoch += 1;
        self.paused = true;
        self.await_gather = false;
        self.await_scatter = false;
        self.await_tcp = false;
        self.in_charge = false;
        self.pending_sum_elems = 0;
        if self.rank == node_idx {
            let (nic, macs) = match &self.attachment {
                Attachment::Inic {
                    fallback: Some(fb), ..
                } => fb.clone(),
                Attachment::Inic { .. } => {
                    panic!("{}: card failure without a wired fallback path", self.label)
                }
                Attachment::Tcp { .. } => unreachable!("a TCP rank's card cannot die twice"),
            };
            ctx.stats().counter(&self.label, "card_failovers").inc();
            self.failed_over = true;
            self.attachment = Attachment::Tcp { nic, macs };
        } else if let Attachment::Inic { card, macs, .. } = &self.attachment {
            ctx.send_now(
                *card,
                InicRecover {
                    dead: macs[node_idx],
                    abort_stream,
                },
            );
        }
        ctx.send_in(
            RECOVERY_LATENCY,
            coord,
            RecoveryReport {
                rank: self.rank as u32,
                round: self.epoch,
                phase: self.completed_round(),
            },
        );
    }

    /// Coordinator verdict: every rank resumes from the cluster-wide
    /// minimum completed round. Ranks that already finished rejoin —
    /// peers re-executing earlier rounds need their messages, and the
    /// lockstep determinism makes the re-execution bit-identical.
    fn on_resume_at(&mut self, r: ResumeAt, ctx: &mut Ctx) {
        if r.round != self.epoch {
            return;
        }
        if !self.configured && matches!(self.attachment, Attachment::Inic { .. }) {
            // The failure landed inside the configuration window: park
            // the resume until the bitstream load completes.
            self.pending_resume = Some(r);
            return;
        }
        self.paused = false;
        self.resumed_from = Some(r.phase);
        ctx.stats().counter(&self.label, "phase_resumes").inc();
        if r.phase as usize >= self.schedule.rounds.len() {
            // Every rank had already completed the schedule; nothing to
            // re-run.
            return;
        }
        self.done = false;
        self.round = r.phase as usize;
        self.state = if r.phase == 0 {
            self.schedule.init_state(&self.input)
        } else {
            self.ckpts
                .get(&r.phase)
                .unwrap_or_else(|| {
                    panic!(
                        "{}: resume round {} without its checkpoint",
                        self.label, r.phase
                    )
                })
                .clone()
        };
        self.started = true;
        if self.timings.started_at.is_none() {
            self.timings.started_at = Some(ctx.now());
        }
        self.phase_entered = ctx.now();
        self.start_round(ctx);
        // Degraded peers running ahead may have pre-delivered their
        // legs for the resumed round.
        self.try_complete_tcp_round(ctx);
        self.try_complete_inic_tcp_legs(ctx);
    }
}

impl Component for CollDriver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        // A stalled host defers everything it would have serviced.
        let ev = match ev.downcast::<Deferred>() {
            Ok(d) => d.0,
            Err(ev) => ev,
        };
        if let Some(release) = self.fault_ctl.stalls.deferral(ctx.now()) {
            ctx.stats().counter(&self.label, "stall_deferrals").inc();
            ctx.self_in(release.since(ctx.now()), Deferred(ev));
            return;
        }
        if ev.downcast_ref::<()>().is_some() {
            match (&self.attachment, &self.offload) {
                (Attachment::Inic { card, .. }, Some(plan)) => {
                    let card = *card;
                    ctx.send_now(
                        card,
                        InicConfigure {
                            bitstream: plan.bitstream.clone(),
                        },
                    );
                }
                _ => self.begin(ctx),
            }
            return;
        }
        let ev = match ev.downcast::<CardFailed>() {
            Ok(f) => {
                self.on_card_failed(f.node, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ResumeAt>() {
            Ok(r) => {
                self.on_resume_at(*r, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicConfigured>() {
            Ok(cfg) => {
                if self.failed_over {
                    // The configuration completed after this rank had
                    // already abandoned its card.
                    return;
                }
                cfg.result.unwrap_or_else(|e| {
                    panic!("{}: collective bitstream rejected: {e}", self.label)
                });
                self.configured = true;
                if let Some(r) = self.pending_resume.take() {
                    self.on_resume_at(r, ctx);
                } else if !self.paused {
                    self.begin(ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<TcpDelivered>() {
            Ok(d) => {
                let src = self
                    .attachment
                    .resolve_src(d.peer)
                    .expect("delivery from an unknown peer");
                self.rx
                    .entry((src, d.chan))
                    .or_default()
                    .extend_from_slice(&d.data);
                self.try_complete_tcp_round(ctx);
                self.try_complete_inic_tcp_legs(ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Ok(g) => {
                self.on_gather_complete(*g, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicScatterDone>() {
            Ok(s) => {
                if self.epoch > 0 && (self.done || s.stream != self.stream() || !self.await_scatter)
                {
                    // A pre-failover scatter completing against a dead
                    // epoch.
                    return;
                }
                assert_eq!(s.stream, self.stream(), "{}: stale scatter", self.label);
                assert!(self.await_scatter, "{}: unexpected scatter", self.label);
                self.await_scatter = false;
                self.maybe_close_inic_round(ctx, 0);
                return;
            }
            Err(ev) => ev,
        };
        if let Some(done) = ev.downcast_ref::<RoundChargeDone>() {
            if done.0 != self.epoch {
                // A charge window armed before a failover.
                return;
            }
            assert!(self.in_charge, "{}: stray charge completion", self.label);
            self.in_charge = false;
            self.timings.compute += ctx.now().since(self.charge_started);
            self.advance_round();
            self.start_round(ctx);
            // A peer may have pre-delivered the next round.
            self.try_complete_tcp_round(ctx);
            self.try_complete_inic_tcp_legs(ctx);
            return;
        }
        panic!("{}: unknown event", self.label);
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        if self.done {
            return None;
        }
        Some(format!(
            "rank {} in {} (round {}/{}, epoch {}, gather={}, scatter={}, tcp={}, charge={}{})",
            self.rank,
            self.phase_name(),
            self.round,
            self.schedule.rounds.len(),
            self.epoch,
            self.await_gather,
            self.await_scatter,
            self.await_tcp,
            self.in_charge,
            if self.paused {
                ", parked for recovery resume"
            } else {
                ""
            },
        ))
    }
}
