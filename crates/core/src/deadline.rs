//! Per-phase deadline hierarchy derived from the Section-4 models.
//!
//! A guarded cluster run does not use one arbitrary global timeout: each
//! application phase gets a budget derived from the model's predicted
//! phase time times a generous slack factor, and the whole-run deadline
//! is the sum of the phase budgets plus whatever the fault plan can
//! legitimately add (outage windows, retransmission and abandonment
//! horizons, recovery rounds). When a run exceeds its deadline the hang
//! is then attributed to the *phase* a rank has been sitting in longest
//! relative to that phase's budget — "rank 2 stuck in exchange1" — not
//! just "the run took too long".
//!
//! The slack factor is deliberately generous, and it depends on the
//! technology: the models predict the *next-generation INIC*, so a run
//! on the ideal card needs little headroom, while the commodity
//! technologies the figures compare against are up to two orders of
//! magnitude slower and Fast Ethernet adds another factor of ten. A
//! deadline is a liveness bound, not a performance assertion: it must
//! never fire on a slow-but-live configuration, only on a wedged one —
//! but the tighter INIC bound is what makes hang *detection* cheap
//! enough for the fault-plan minimizer to run dozens of candidate runs.

use acc_net::routing::Attachment as FabricAttachment;
use acc_net::{compute_schedule, FabricSpec, MacAddr, TrunkOutage};
use acc_sim::{SimDuration, SimTime, Watchdog};

use acc_coll::CollectiveOp;

use crate::cluster::{select_algorithm, ClusterSpec, Technology};
use crate::model::{CollModel, FftModel, SortModel};
use crate::runner::Workload;

/// Multiplier between a model-predicted phase time and that phase's
/// liveness budget, per technology. The ratios between a technology's
/// observed times and the INIC-model prediction are at worst ~10x for
/// the prototype card, ~50x for Gigabit TCP, and ~1000x for Fast
/// Ethernet at the small problem sizes the tests use; each bound keeps
/// more than an order of magnitude of margin on top.
fn slack(technology: Technology) -> u64 {
    match technology {
        Technology::FastEthernet => 4096,
        Technology::GigabitTcp => 1024,
        Technology::InicProtocol => 512,
        Technology::InicPrototype => 256,
        Technology::InicIdeal => 64,
    }
}

/// No phase budget is ever smaller than this, however fast the model
/// says the phase should be: small-problem runs are dominated by fixed
/// costs (configuration, interrupts, recovery rounds) the per-byte
/// models do not see.
const PHASE_FLOOR: SimDuration = SimDuration::from_millis(500);

/// Extra whole-run allowance when a fault plan is attached: retransmit
/// timers, abandonment of a dead peer (MAX_RETRIES expiries with
/// backoff), recovery coordination rounds and a restarted attempt.
const FAULT_GRACE: SimDuration = SimDuration::from_secs(2);

/// Baseline event budget for any run (configuration, recovery chatter,
/// auditor ticks).
const BASE_EVENTS: u64 = 5_000_000;

/// Events allowed per KiB of application payload crossing the network.
/// Real traffic costs a handful of events per frame; hundreds per KiB
/// only happen when a retransmit/credit loop stops making progress.
const EVENTS_PER_KIB: u64 = 2_000;

/// Consecutive same-timestamp events tolerated before the run is
/// declared livelocked. Legitimate bursts (a switch fanning a broadcast
/// out to every port at one instant) are thousands of events; a million
/// without the clock moving is a cycle.
const STALL_EVENTS: u64 = 1_000_000;

/// One named phase budget.
#[derive(Clone, Debug)]
pub struct PhaseBudget {
    /// Phase name as the drivers report it (`fft1`, `exchange`, ...).
    pub name: &'static str,
    /// Liveness budget for the phase (slack already applied).
    pub budget: SimDuration,
}

/// The full deadline hierarchy for one run: per-phase budgets nested
/// under a whole-run deadline, plus the event-count bounds handed to
/// the simulation [`Watchdog`].
#[derive(Clone, Debug)]
pub struct DeadlineHierarchy {
    /// Per-phase budgets, in application order.
    pub phases: Vec<PhaseBudget>,
    /// Absolute whole-run deadline.
    pub run_deadline: SimTime,
    /// Event budget for the run.
    pub event_budget: u64,
    /// Same-timestamp livelock threshold.
    pub stall_events: u64,
}

impl DeadlineHierarchy {
    /// Derive the hierarchy for `workload` on the cluster `spec`
    /// describes.
    pub fn for_run(spec: &ClusterSpec, workload: &Workload) -> DeadlineHierarchy {
        let p = spec.p;
        let slack = slack(spec.technology);
        let scaled = |predicted| scale(predicted, slack);
        // Collective phases are lockstep: every rank's round waits on
        // the slowest participating rank. A fault plan that can kill a
        // card degrades that rank to the commodity fallback NIC, so the
        // budgets must price the *degraded* technology — otherwise a
        // legitimately slower mixed TCP/INIC collective trips a false
        // deadline.
        let coll_tech = budget_technology(spec);
        let coll_slack = self::slack(coll_tech);
        let coll_scaled = |predicted| scale(predicted, coll_slack);
        let (mut phases, payload_kib) = match *workload {
            Workload::Fft { rows } => {
                let model = FftModel::new(rows);
                let fft = scaled(model.t_compute(p) / 2);
                let trans = scaled(model.t_trans(p));
                let phases = vec![
                    PhaseBudget {
                        name: "fft1",
                        budget: fft,
                    },
                    PhaseBudget {
                        name: "transpose1",
                        budget: trans,
                    },
                    PhaseBudget {
                        name: "fft2",
                        budget: fft,
                    },
                    PhaseBudget {
                        name: "transpose2",
                        budget: trans,
                    },
                ];
                // Each transpose moves the whole matrix (16 B/element).
                let kib = (rows as u64 * rows as u64 * 16 * 2) / 1024;
                (phases, kib)
            }
            Workload::Sort { total_keys } | Workload::SortCustom { total_keys, .. } => {
                let model = SortModel::new(total_keys);
                let host = scaled(model.t_countsort(p));
                let exchange = scaled(model.t_inic(p));
                let phases = vec![
                    PhaseBudget {
                        name: "bucket1",
                        budget: host,
                    },
                    PhaseBudget {
                        name: "exchange",
                        budget: exchange,
                    },
                    PhaseBudget {
                        name: "bucket2",
                        budget: host,
                    },
                    PhaseBudget {
                        name: "count",
                        budget: scaled(model.t_countsort(p)),
                    },
                ];
                (phases, (total_keys * 4) / 1024)
            }
            Workload::AllReduce { elems } => {
                // The flat AllReduce rides the engine with its
                // policy-selected algorithm; budget the phases that
                // algorithm actually has.
                let algo = select_algorithm(spec.technology, CollectiveOp::AllReduce, p, elems);
                let model = CollModel::collective(CollectiveOp::AllReduce, algo, p, elems);
                collective_budgets(&model, coll_tech, p, &coll_scaled)
            }
            Workload::Collective { op, algo, elems } => {
                let model = CollModel::collective(op, algo, p, elems);
                collective_budgets(&model, coll_tech, p, &coll_scaled)
            }
            Workload::Halo { elems, iters } => {
                let model = CollModel::halo(p, elems, iters);
                collective_budgets(&model, coll_tech, p, &coll_scaled)
            }
        };
        // Multi-switch fabrics legitimately inflate every phase: a
        // frame crossing five switches pays five store-and-forward
        // latencies plus per-hop queueing, and failover detours stretch
        // the worst path further. Price the budgets at the worst-case
        // hop inflation over every routing epoch the fault plan
        // induces, so a degraded-but-live run never trips a false
        // deadline.
        let inflation = fabric_inflation(spec);
        if inflation > 1 {
            for ph in &mut phases {
                ph.budget = ph
                    .budget
                    .checked_mul(inflation)
                    .unwrap_or(SimDuration::from_ps(u64::MAX));
            }
        }
        let mut run_budget = SimDuration::from_secs(1); // configuration etc.
        for ph in &phases {
            run_budget = run_budget.saturating_add(ph.budget);
        }
        if let Some(plan) = &spec.fault_plan {
            run_budget = run_budget.saturating_add(FAULT_GRACE);
            if let Some(h) = plan.horizon() {
                // The plan may hold links dark until `h`; nothing can
                // be expected to finish before the last window lifts.
                run_budget = run_budget.saturating_add(h.since(SimTime::ZERO));
            }
        }
        let event_budget = BASE_EVENTS.saturating_add(
            payload_kib
                .saturating_mul(EVENTS_PER_KIB)
                .saturating_mul(p as u64),
        );
        DeadlineHierarchy {
            phases,
            run_deadline: SimTime::ZERO + run_budget,
            event_budget,
            stall_events: STALL_EVENTS,
        }
    }

    /// The budget for a named phase, or the floor for phases the model
    /// does not predict (`init` and any future ones).
    pub fn phase_budget(&self, name: &str) -> SimDuration {
        self.phases
            .iter()
            .find(|ph| ph.name == name)
            .map(|ph| ph.budget)
            .unwrap_or(PHASE_FLOOR)
    }

    /// The simulation watchdog enforcing this hierarchy's outer bounds.
    pub fn watchdog(&self) -> Watchdog {
        Watchdog::unlimited()
            .with_event_budget(self.event_budget)
            .with_stall_events(self.stall_events)
            .with_deadline(self.run_deadline)
    }
}

/// The technology whose model prices a lockstep collective's phase
/// budgets: the slowest technology any participating rank can end up
/// on. Clean runs (and plans without card kills) use the spec's
/// technology; a plan that can kill a card on an INIC run leaves the
/// dead rank on the commodity Gigabit fallback NIC, and every lockstep
/// round then waits on that rank.
fn budget_technology(spec: &ClusterSpec) -> Technology {
    let Some(plan) = &spec.fault_plan else {
        return spec.technology;
    };
    if !spec.technology.is_inic() {
        return spec.technology;
    }
    // A dead edge switch degrades every rank homed on it to the
    // commodity fallback NIC exactly like a card death (see the cluster
    // wiring), so it prices the budgets the same way.
    let switch_victims =
        spec.fabric != FabricSpec::SingleSwitch && !plan.switch_failures().is_empty() && {
            let topo = spec.fabric.build(spec.p);
            plan.switch_failures()
                .iter()
                .any(|&(s, _)| topo.home.contains(&(s as usize)))
        };
    if plan.has_card_failures() || switch_victims {
        Technology::GigabitTcp
    } else {
        spec.technology
    }
}

/// Worst-case routed-path length (in switches) across every routing
/// epoch of the spec's fabric, relative to the single-switch baseline
/// of 1. Pure: recomputed from the spec exactly as the cluster wiring
/// computes it, so the budgets and the fabric always agree.
fn fabric_inflation(spec: &ClusterSpec) -> u64 {
    if spec.fabric == FabricSpec::SingleSwitch {
        return 1;
    }
    let topo = spec.fabric.build(spec.p);
    let attachments: Vec<FabricAttachment> = topo
        .home
        .iter()
        .enumerate()
        .map(|(rank, &switch)| FabricAttachment {
            mac: MacAddr::for_node(rank, 0),
            switch,
            rank,
        })
        .collect();
    let (outages, kills) = match &spec.fault_plan {
        Some(pl) => (
            pl.link_downs()
                .iter()
                .map(|&(a, b, from, until)| TrunkOutage {
                    a: a as usize,
                    b: b as usize,
                    from,
                    until,
                })
                .collect(),
            pl.switch_failures()
                .iter()
                .map(|&(s, at)| (s as usize, at))
                .collect(),
        ),
        None => (Vec::new(), Vec::new()),
    };
    compute_schedule(&topo, &attachments, &outages, &kills).max_inflation() as u64
}

/// Per-phase budgets for an engine schedule: the collective model's
/// per-phase predictions for this technology, slack-scaled, plus the
/// watchdog payload term from the schedule's critical-path wire volume.
fn collective_budgets(
    model: &CollModel,
    technology: Technology,
    p: usize,
    scaled: &impl Fn(SimDuration) -> SimDuration,
) -> (Vec<PhaseBudget>, u64) {
    let phases = model
        .phase_predictions(technology)
        .into_iter()
        .map(|(name, predicted)| PhaseBudget {
            name,
            budget: scaled(predicted),
        })
        .collect();
    (phases, model.wire_bytes() * p as u64 / 1024)
}

/// Slack-multiplied, floored phase budget.
fn scale(predicted: SimDuration, slack: u64) -> SimDuration {
    let scaled = predicted
        .checked_mul(slack)
        .unwrap_or(SimDuration::from_ps(u64::MAX));
    if scaled < PHASE_FLOOR {
        PHASE_FLOOR
    } else {
        scaled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Technology;
    use acc_chaos::{FaultEvent, LinkId};

    #[test]
    fn phase_budgets_scale_with_problem_size() {
        let spec = ClusterSpec::new(4, Technology::GigabitTcp);
        let small = DeadlineHierarchy::for_run(&spec, &Workload::Fft { rows: 64 });
        let large = DeadlineHierarchy::for_run(&spec, &Workload::Fft { rows: 1024 });
        assert!(large.phase_budget("transpose1") > small.phase_budget("transpose1"));
        assert!(large.run_deadline > small.run_deadline);
        assert!(large.event_budget > small.event_budget);
    }

    #[test]
    fn slower_technologies_get_wider_budgets() {
        // Same workload, same model prediction — the slower wire gets
        // the larger slack, so its liveness bound still cannot fire on
        // a slow-but-live run. Sizes large enough to clear the floor.
        let wl = Workload::Fft { rows: 2048 };
        let inic = DeadlineHierarchy::for_run(&ClusterSpec::new(4, Technology::InicIdeal), &wl);
        let fe = DeadlineHierarchy::for_run(&ClusterSpec::new(4, Technology::FastEthernet), &wl);
        assert!(fe.phase_budget("transpose1") > inic.phase_budget("transpose1"));
        assert!(fe.run_deadline > inic.run_deadline);
    }

    #[test]
    fn budgets_never_fall_below_the_floor() {
        let spec = ClusterSpec::new(2, Technology::InicIdeal);
        let h = DeadlineHierarchy::for_run(&spec, &Workload::Sort { total_keys: 1 << 8 });
        for ph in &h.phases {
            assert!(ph.budget >= PHASE_FLOOR, "{} below floor", ph.name);
        }
        // Unknown phases get the floor, not zero.
        assert_eq!(h.phase_budget("init"), PHASE_FLOOR);
    }

    #[test]
    fn fault_plan_extends_the_run_deadline() {
        let clean = ClusterSpec::new(4, Technology::InicIdeal);
        let base = DeadlineHierarchy::for_run(
            &clean,
            &Workload::Sort {
                total_keys: 1 << 12,
            },
        );
        let plan = acc_chaos::FaultPlan::new(1).with(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(1),
            from: SimTime::ZERO + SimDuration::from_millis(1),
            until: SimTime::ZERO + SimDuration::from_millis(900),
        });
        let faulted = clean.with_fault_plan(plan);
        let fh = DeadlineHierarchy::for_run(
            &faulted,
            &Workload::Sort {
                total_keys: 1 << 12,
            },
        );
        assert!(fh.run_deadline > base.run_deadline);
    }

    #[test]
    fn degraded_collectives_are_priced_at_the_slowest_rank() {
        // A card-kill plan leaves the dead rank on the Gigabit fallback
        // NIC, and lockstep rounds wait on the slowest rank: the phase
        // budgets must match the GigabitTcp-priced hierarchy, not the
        // INIC one, or a legitimately degraded run trips a false
        // deadline. Sizes large enough to clear the phase floor.
        let wl = Workload::Collective {
            op: acc_coll::CollectiveOp::AllReduce,
            algo: acc_coll::Algorithm::Ring,
            elems: 1 << 20,
        };
        let clean = ClusterSpec::new(4, Technology::InicIdeal);
        let kill = acc_chaos::FaultPlan::new(7).with(FaultEvent::CardFailure {
            node: 1,
            at: SimTime::ZERO + SimDuration::from_millis(61),
        });
        let degraded = clean.clone().with_fault_plan(kill);
        let ch = DeadlineHierarchy::for_run(&clean, &wl);
        let dh = DeadlineHierarchy::for_run(&degraded, &wl);
        let gb = DeadlineHierarchy::for_run(&ClusterSpec::new(4, Technology::GigabitTcp), &wl);
        for ph in &dh.phases {
            assert!(
                ph.budget > ch.phase_budget(ph.name),
                "{}: degraded budget must widen past the clean INIC bound",
                ph.name
            );
            assert_eq!(
                ph.budget,
                gb.phase_budget(ph.name),
                "{}: degraded budget prices the commodity fallback",
                ph.name
            );
        }
        // A plan without card kills changes nothing: stalls and link
        // impairments never change any rank's technology.
        let stall = acc_chaos::FaultPlan::new(8).with(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(1),
            from: SimTime::ZERO + SimDuration::from_millis(1),
            until: SimTime::ZERO + SimDuration::from_millis(9),
        });
        let jittered = clean.with_fault_plan(stall);
        let jh = DeadlineHierarchy::for_run(&jittered, &wl);
        for ph in &jh.phases {
            assert_eq!(ph.budget, ch.phase_budget(ph.name));
        }
    }

    #[test]
    fn watchdog_mirrors_the_hierarchy() {
        let spec = ClusterSpec::new(2, Technology::GigabitTcp);
        let h = DeadlineHierarchy::for_run(&spec, &Workload::AllReduce { elems: 1 << 10 });
        let wd = h.watchdog();
        assert_eq!(wd.event_budget, h.event_budget);
        assert_eq!(wd.stall_events, h.stall_events);
        assert_eq!(wd.deadline, Some(h.run_deadline));
    }
}
