//! The FFT performance model of Section 4.1 (Eqs. 3–10).

use acc_host::HostKernels;
use acc_sim::{DataSize, SimDuration};

/// Bytes per complex double-precision element (Eq. 5's constant 16).
pub const ELEM_BYTES: u64 = 16;

/// The Section 4.1 model for the FFTW application on an ideal INIC.
#[derive(Clone, Debug)]
pub struct FftModel {
    /// Matrix edge (the paper's `rows`; matrices are square).
    pub rows: usize,
    /// Host kernel calibration supplying `T_1D-FFT`.
    pub kernels: HostKernels,
}

impl FftModel {
    /// Model for a `rows × rows` transform with the standard Athlon
    /// calibration.
    pub fn new(rows: usize) -> FftModel {
        FftModel {
            rows,
            kernels: HostKernels::athlon_1ghz(),
        }
    }

    /// Eq. 5: the per-processor partition size
    /// `S = rows² × 16 / P` in bytes.
    pub fn partition_size(&self, p: usize) -> DataSize {
        DataSize::from_bytes(self.rows as u64 * self.rows as u64 * ELEM_BYTES / p as u64)
    }

    /// Eq. 4: `T_compute = 2 × T_1D-FFT(rows) × rows / P`.
    pub fn t_compute(&self, p: usize) -> SimDuration {
        self.kernels.fft_compute_time(self.rows, p)
    }

    /// Eq. 6: host memory → FPGA memory, `(S/P) / 80 MiB/s`.
    ///
    /// Only `S/P` appears because movement is pipelined: after the first
    /// processor's worth is on the card, the host-side transfer hides
    /// behind transmission.
    pub fn t_dtc(&self, p: usize) -> SimDuration {
        let s_over_p = self.partition_size(p).bytes() / p as u64;
        DataSize::from_bytes(s_over_p) / acc_sim::Bandwidth::from_mib_per_sec(80)
    }

    /// Eq. 7: FPGA memory → network, `(S/P) / 90 MiB/s`.
    pub fn t_dtg(&self, p: usize) -> SimDuration {
        let s_over_p = self.partition_size(p).bytes() / p as u64;
        DataSize::from_bytes(s_over_p) / acc_sim::Bandwidth::from_mib_per_sec(90)
    }

    /// Eq. 8: receive from the network,
    /// `((P−1) × S / P) / 90 MiB/s` — receives pipeline with sends after
    /// one processor's worth is in flight.
    pub fn t_dfg(&self, p: usize) -> SimDuration {
        let bytes = (p as u64 - 1) * self.partition_size(p).bytes() / p as u64;
        DataSize::from_bytes(bytes) / acc_sim::Bandwidth::from_mib_per_sec(90)
    }

    /// Eq. 9: the final copy to the host, `S / 80 MiB/s` — it "must wait
    /// on all data to be received".
    pub fn t_dth(&self, p: usize) -> SimDuration {
        self.partition_size(p) / acc_sim::Bandwidth::from_mib_per_sec(80)
    }

    /// Eq. 10: both transposes,
    /// `T_trans = 2 × (T_dtc + T_dtg + T_dfg + T_dth)`.
    pub fn t_trans(&self, p: usize) -> SimDuration {
        (self.t_dtc(p) + self.t_dtg(p) + self.t_dfg(p) + self.t_dth(p)) * 2
    }

    /// Eq. 3: `T = T_compute + T_trans` for the INIC implementation.
    pub fn t_total(&self, p: usize) -> SimDuration {
        self.t_compute(p) + self.t_trans(p)
    }

    /// The single-processor baseline used for every speedup curve: the
    /// serial FFTW run — all compute plus two purely local transposes.
    pub fn t_serial(&self) -> SimDuration {
        let whole = DataSize::from_bytes(self.rows as u64 * self.rows as u64 * ELEM_BYTES);
        self.t_compute(1) + self.kernels.local_transpose_time(whole) * 2
    }

    /// INIC speedup at `p` processors (Fig. 4(a)'s INIC curves).
    pub fn speedup(&self, p: usize) -> f64 {
        self.t_serial().as_secs_f64() / self.t_total(p).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_size_matches_eq5() {
        let m = FftModel::new(512);
        // 512² × 16 = 4 MiB total.
        assert_eq!(m.partition_size(1), DataSize::from_mib(4));
        assert_eq!(m.partition_size(4), DataSize::from_mib(1));
        assert_eq!(m.partition_size(16), DataSize::from_kib(256));
    }

    #[test]
    fn transfer_terms_scale_as_the_equations_say() {
        let m = FftModel::new(512);
        for p in [2usize, 4, 8, 16] {
            // t_dtc : t_dtg = 90 : 80 (same bytes, different rates).
            let r = m.t_dtc(p).as_secs_f64() / m.t_dtg(p).as_secs_f64();
            assert!((r - 90.0 / 80.0).abs() < 1e-6, "p={p} ratio {r}");
            // t_dfg = (P-1) × t_dtg.
            let q = m.t_dfg(p).as_secs_f64() / m.t_dtg(p).as_secs_f64();
            assert!((q - (p as f64 - 1.0)).abs() < 1e-6, "p={p} q={q}");
        }
    }

    #[test]
    fn transpose_time_halves_roughly_with_p() {
        // S scales as 1/P and every term scales down with it, so the
        // modelled transpose time decreases superlinearly in P.
        let m = FftModel::new(512);
        let t2 = m.t_trans(2).as_secs_f64();
        let t4 = m.t_trans(4).as_secs_f64();
        let t8 = m.t_trans(8).as_secs_f64();
        assert!(t2 > 1.8 * t4, "t2={t2} t4={t4}");
        assert!(t4 > 1.8 * t8);
    }

    #[test]
    fn speedup_is_near_linear_through_16() {
        // Fig. 4(a): "near linear speedup for our INIC based system",
        // superlinear where the partition drops into cache.
        for rows in [256usize, 512] {
            let m = FftModel::new(rows);
            let s16 = m.speedup(16);
            assert!(
                s16 > 12.0,
                "rows={rows}: INIC speedup at P=16 is {s16:.2}, paper shows ≳14"
            );
            // Monotone increasing over the evaluated range.
            let mut prev = 0.0;
            for p in [1usize, 2, 4, 8, 16] {
                let s = m.speedup(p);
                assert!(s > prev, "rows={rows} p={p}: {s} ≤ {prev}");
                prev = s;
            }
        }
    }

    #[test]
    fn speedup_at_one_processor_close_to_unity() {
        // At P=1 the model still charges card round trips, so speedup is
        // slightly below 1 — it must not exceed the serial baseline.
        let m = FftModel::new(256);
        let s = m.speedup(1);
        assert!((0.5..=1.0).contains(&s), "speedup(1) = {s}");
    }

    #[test]
    fn transpose_is_communication_bound_at_scale() {
        // Past the cache knee compute shrinks 1/P while t_dth shrinks
        // 1/P too — the model stays balanced; just sanity-check both
        // components stay positive and finite.
        let m = FftModel::new(512);
        for p in [2usize, 4, 8, 16] {
            assert!(m.t_compute(p) > SimDuration::ZERO);
            assert!(m.t_trans(p) > SimDuration::ZERO);
        }
    }
}
