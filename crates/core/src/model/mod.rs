//! Closed-form performance models — the paper's Section 4.
//!
//! These are the equations the paper uses to predict the next-generation
//! INIC's performance (its prototype could not reach them). They are
//! deliberately implemented *literally*, constant-for-constant, so a
//! reader can diff them against the paper; the simulator cross-checks
//! them in `tests/model_vs_sim.rs`.

pub mod coll;
pub mod fft;
pub mod sort;

pub use coll::CollModel;
pub use fft::FftModel;
pub use sort::SortModel;
