//! The integer-sort performance model of Section 4.2 (Eqs. 11–17).

use acc_host::HostKernels;
use acc_sim::{Bandwidth, DataSize, SimDuration};

/// Bytes per key (Eq. 12's constant 4).
pub const KEY_BYTES: u64 = 4;

/// INIC packet size assumed by Eqs. 13–14.
pub const PACKET_BYTES: u64 = 1024;

/// The minimum card→host transfer for DMA efficiency (Eq. 15's 65536).
pub const DMA_MIN: u64 = 65_536;

/// The Section 4.2 model for the parallel integer sort on an ideal INIC.
#[derive(Clone, Debug)]
pub struct SortModel {
    /// Total keys sorted across the cluster (the paper's `E_init`,
    /// 2²⁵ in Fig. 5).
    pub total_keys: u64,
    /// Host kernel calibration for `T_countsort` and the Gigabit
    /// baseline's bucket phases.
    pub kernels: HostKernels,
}

impl SortModel {
    /// Model for `total_keys` keys (the paper's Fig. 5 uses 2²⁵).
    pub fn new(total_keys: u64) -> SortModel {
        SortModel {
            total_keys,
            kernels: HostKernels::athlon_1ghz(),
        }
    }

    /// Receive-side bucket count `N`, "based on the data size": enough
    /// buckets that each holds ≈128 KiB (cache-resident), floored at the
    /// paper's 128-bucket minimum.
    pub fn recv_buckets(&self, p: usize) -> u64 {
        let keys_per_node = self.total_keys / p as u64;
        let needed = (keys_per_node * KEY_BYTES).div_ceil(128 * 1024).max(128);
        needed.next_power_of_two()
    }

    /// Eq. 12: partition size `S = 4 × E_init / P` bytes.
    pub fn partition_size(&self, p: usize) -> DataSize {
        DataSize::from_bytes(KEY_BYTES * self.total_keys / p as u64)
    }

    /// Eq. 13: `T_dtc = P × 1024 / 80 MiB/s` — the worst-case wait for
    /// the first packet's worth of each destination's bin to fill before
    /// transmission can begin.
    pub fn t_dtc(&self, p: usize) -> SimDuration {
        DataSize::from_bytes(p as u64 * PACKET_BYTES) / Bandwidth::from_mib_per_sec(80)
    }

    /// Eq. 14: `T_dtg = P × 1024 / 90 MiB/s`.
    pub fn t_dtg(&self, p: usize) -> SimDuration {
        DataSize::from_bytes(p as u64 * PACKET_BYTES) / Bandwidth::from_mib_per_sec(90)
    }

    /// Eq. 15: `T_dfg = N × 65536 / 90 MiB/s` — N bucket-threshold
    /// fills before any one bucket is guaranteed to cross the DMA
    /// threshold.
    pub fn t_dfg(&self, p: usize) -> SimDuration {
        DataSize::from_bytes(self.recv_buckets(p) * DMA_MIN) / Bandwidth::from_mib_per_sec(90)
    }

    /// Eq. 16: `T_dth = S / 80 MiB/s` — retrieving the results.
    pub fn t_dth(&self, p: usize) -> SimDuration {
        self.partition_size(p) / Bandwidth::from_mib_per_sec(80)
    }

    /// Eq. 17: `T_INIC = T_dtc + T_dtg + T_dfg + T_dth`.
    pub fn t_inic(&self, p: usize) -> SimDuration {
        self.t_dtc(p) + self.t_dtg(p) + self.t_dfg(p) + self.t_dth(p)
    }

    /// The final count-sort phase on `E/P` keys in cache-resident
    /// buckets — "dependent on the number of elements on each processor
    /// and thus the same for any of our implementations".
    pub fn t_countsort(&self, p: usize) -> SimDuration {
        let keys = self.total_keys / p as u64;
        let bucket_bytes = DataSize::from_bytes((keys * KEY_BYTES / self.recv_buckets(p)).max(1));
        self.kernels.count_sort_time(keys, bucket_bytes)
    }

    /// Eq. 11: `T = T_countsort + T_INIC`.
    pub fn t_total(&self, p: usize) -> SimDuration {
        self.t_countsort(p) + self.t_inic(p)
    }

    /// The serial baseline: both bucket-sort passes over DRAM-resident
    /// data (the "over 5 seconds" of Section 4.2) plus the count sort.
    pub fn t_serial(&self) -> SimDuration {
        let working = self.partition_size(1);
        let bucket = self.kernels.bucket_sort_time(self.total_keys, working);
        bucket + bucket + self.t_countsort(1)
    }

    /// INIC speedup (Fig. 5(b)'s INIC curve). Superlinear, because the
    /// serial baseline carries the bucket sorts the INIC absorbs.
    pub fn speedup(&self, p: usize) -> f64 {
        self.t_serial().as_secs_f64() / self.t_total(p).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_model() -> SortModel {
        SortModel::new(1 << 25)
    }

    #[test]
    fn partition_matches_fig5a_axis() {
        // Fig. 5(a) right axis: ~131072 KB at P=1 for 2²⁵ keys.
        let m = paper_model();
        assert_eq!(m.partition_size(1).bytes(), 128 * 1024 * 1024);
        assert_eq!(m.partition_size(16).bytes(), 8 * 1024 * 1024);
    }

    #[test]
    fn latency_terms_are_small_against_dma_term() {
        // Eqs. 13–15 are latency offsets; Eq. 16 carries the volume. At
        // the paper's scale the DMA term dominates.
        let m = paper_model();
        for p in [2usize, 4, 8, 16] {
            let latency = m.t_dtc(p) + m.t_dtg(p) + m.t_dfg(p);
            assert!(
                m.t_dth(p) > latency,
                "p={p}: t_dth {:?} vs latency {:?}",
                m.t_dth(p),
                latency
            );
        }
    }

    #[test]
    fn countsort_time_matches_fig5a_scale() {
        // Fig. 5(a): count sort ≈ 2.3 s at P=1, halving with P.
        let m = paper_model();
        let t1 = m.t_countsort(1).as_secs_f64();
        assert!((1.9..2.6).contains(&t1), "t_countsort(1) = {t1}");
        let t2 = m.t_countsort(2).as_secs_f64();
        assert!((t1 / t2 - 2.0).abs() < 0.05);
    }

    #[test]
    fn inic_speedup_is_superlinear() {
        // Fig. 5(b): the INIC curve rises well above the ideal line
        // because the serial baseline's ~5 s of bucket sorting vanishes.
        let m = paper_model();
        for p in [2usize, 4, 8, 16] {
            let s = m.speedup(p);
            assert!(
                s > p as f64,
                "p={p}: INIC speedup {s:.2} should exceed linear"
            );
        }
        // And the paper's Fig. 5(b) tops out near ~30 at P=16.
        let s16 = m.speedup(16);
        assert!((20.0..40.0).contains(&s16), "speedup(16) = {s16:.1}");
    }

    #[test]
    fn speedup_grows_monotonically() {
        let m = paper_model();
        let mut prev = 0.0;
        for p in [1usize, 2, 4, 8, 16] {
            let s = m.speedup(p);
            assert!(s > prev, "p={p}: {s} ≤ {prev}");
            prev = s;
        }
    }

    #[test]
    fn eq13_is_linear_in_p() {
        let m = paper_model();
        let a = m.t_dtc(4).as_secs_f64();
        let b = m.t_dtc(8).as_secs_f64();
        assert!((b / a - 2.0).abs() < 1e-9);
    }
}
