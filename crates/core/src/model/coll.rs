//! Per-collective, per-algorithm cost formulas — the Section-4 analytic
//! treatment extended to the `acc-coll` engine.
//!
//! The Section-4 models predict one application each; the collective
//! model instead predicts any engine schedule from its *round profile*:
//! [`acc_coll::plan::profile`] reduces a schedule to the critical-path
//! cost of every round (bytes on the wire, elements folded, elements
//! swept locally), and this model prices each round on a technology as
//!
//! `T_round = α(tech) + bytes/β(tech) + T_fold + T_sweep`
//!
//! where `α` is the per-round startup on the critical path (interrupt
//! and protocol handling for the TCP paths, descriptor issue for the
//! INIC paths), `β` the effective per-link streaming bandwidth of the
//! path (kernel TCP over the link, or the card datapath — whichever is
//! narrower), and the fold term is host arithmetic only on the paths
//! that fold `Sum` rounds on the host (the commodity technologies and
//! the protocol-processor mode; the combined INIC folds in its
//! `ReduceSum` operator, which streams at datapath rate and is already
//! inside `β`). The constants are calibrated against the simulator the
//! same way Section 4 calibrates against the prototype, and
//! `tests/model_vs_sim.rs` bounds the residual error per
//! collective × algorithm × technology cell.

use acc_coll::plan::{self, RoundCost};
use acc_coll::{Algorithm, CollectiveOp};
use acc_host::HostKernels;
use acc_sim::{Bandwidth, DataSize, SimDuration};

use crate::cluster::Technology;

/// The collective cost model for one (collective, algorithm, p, elems)
/// cell — or one halo-exchange workload, which compiles to the same
/// round profile.
#[derive(Clone, Debug)]
pub struct CollModel {
    /// Critical-path cost of every round, in schedule order.
    costs: Vec<RoundCost>,
    /// Host kernel calibration supplying the fold and sweep times.
    kernels: HostKernels,
}

impl CollModel {
    /// Model for one collective cell with the standard Athlon
    /// calibration.
    pub fn collective(op: CollectiveOp, algo: Algorithm, p: usize, elems: usize) -> CollModel {
        CollModel {
            costs: plan::profile(&plan::build_all(op, algo, p, elems)),
            kernels: HostKernels::athlon_1ghz(),
        }
    }

    /// Model for the halo-exchange driver (`iters` sweeps over a
    /// `p × elems` strip decomposition).
    pub fn halo(p: usize, elems: usize, iters: usize) -> CollModel {
        let schedules: Vec<_> = (0..p).map(|r| plan::halo(r, p, elems, iters)).collect();
        CollModel {
            costs: plan::profile(&schedules),
            kernels: HostKernels::athlon_1ghz(),
        }
    }

    /// Per-round startup charged on the critical path. The TCP paths pay
    /// interrupt service and kernel protocol processing per message; the
    /// INIC paths pay only descriptor issue and the card's pipeline
    /// fill, so their rounds turn over an order of magnitude faster.
    fn alpha(technology: Technology) -> SimDuration {
        match technology {
            Technology::FastEthernet => SimDuration::from_micros(120),
            Technology::GigabitTcp => SimDuration::from_micros(130),
            Technology::InicIdeal => SimDuration::from_micros(20),
            Technology::InicPrototype => SimDuration::from_micros(25),
            Technology::InicProtocol => SimDuration::from_micros(20),
        }
    }

    /// Effective per-link streaming bandwidth of the path: kernel TCP
    /// sustains a fraction of the raw link (interrupt and copy overhead
    /// — Section 2's motivating measurement), while the INIC paths run
    /// at the narrower of the link and the card datapath (the prototype
    /// is pinched by its shared 132 MB/s card bus).
    fn beta(technology: Technology) -> Bandwidth {
        match technology {
            Technology::FastEthernet => Bandwidth::from_mib_per_sec(9),
            Technology::GigabitTcp => Bandwidth::from_mib_per_sec(16),
            Technology::InicIdeal => Bandwidth::from_mib_per_sec(30),
            Technology::InicPrototype => Bandwidth::from_mib_per_sec(28),
            Technology::InicProtocol => Bandwidth::from_mib_per_sec(35),
        }
    }

    /// Whether `Sum` rounds fold on the host for this technology. Only
    /// the combined-mode INIC paths fold in the card datapath.
    fn host_folds(technology: Technology) -> bool {
        !matches!(
            technology,
            Technology::InicIdeal | Technology::InicPrototype
        )
    }

    /// Predicted critical-path time of one round on `technology`.
    pub fn round_time(&self, cost: &RoundCost, technology: Technology) -> SimDuration {
        let mut t = Self::alpha(technology);
        if cost.send_bytes > 0 {
            t += DataSize::from_bytes(cost.send_bytes) / Self::beta(technology);
        }
        if cost.sum_elems > 0 && Self::host_folds(technology) {
            t += self.kernels.reduce_time(cost.sum_elems, 2);
        }
        if cost.compute_elems > 0 {
            t += self.kernels.reduce_time(cost.compute_elems, 1);
        }
        t
    }

    /// Predicted total time of the whole schedule on `technology`
    /// (excluding card configuration, which the runners also exclude).
    pub fn total(&self, technology: Technology) -> SimDuration {
        self.costs
            .iter()
            .map(|c| self.round_time(c, technology))
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Predicted time aggregated by phase label, in first-appearance
    /// order — the input to the deadline hierarchy's per-phase budgets.
    pub fn phase_predictions(&self, technology: Technology) -> Vec<(&'static str, SimDuration)> {
        let mut phases: Vec<(&'static str, SimDuration)> = Vec::new();
        for cost in &self.costs {
            let t = self.round_time(cost, technology);
            match phases.iter_mut().find(|(name, _)| *name == cost.phase) {
                Some((_, acc)) => *acc += t,
                None => phases.push((cost.phase, t)),
            }
        }
        phases
    }

    /// Critical-path wire volume of the schedule in bytes (per rank) —
    /// the payload term of the watchdog's event budget.
    pub fn wire_bytes(&self) -> u64 {
        self.costs.iter().map(|c| c.send_bytes).sum()
    }

    /// Number of rounds in the schedule.
    pub fn rounds(&self) -> usize {
        self.costs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_beats_doubling_on_large_vectors_and_loses_on_small() {
        // The latency/bandwidth trade the policy encodes must fall out
        // of the model: at 1 MiB the ring's 1/p-sized messages win, at
        // 16 elements recursive doubling's log p rounds win.
        let p = 8;
        let big_ring = CollModel::collective(CollectiveOp::AllReduce, Algorithm::Ring, p, 1 << 17);
        let big_rd = CollModel::collective(
            CollectiveOp::AllReduce,
            Algorithm::RecursiveDoubling,
            p,
            1 << 17,
        );
        let small_ring = CollModel::collective(CollectiveOp::AllReduce, Algorithm::Ring, p, 16);
        let small_rd =
            CollModel::collective(CollectiveOp::AllReduce, Algorithm::RecursiveDoubling, p, 16);
        for tech in Technology::ALL {
            assert!(
                big_ring.total(tech) < big_rd.total(tech),
                "{tech:?}: ring must win at 1 MiB"
            );
            assert!(
                small_rd.total(tech) < small_ring.total(tech),
                "{tech:?}: doubling must win at 128 B"
            );
        }
    }

    #[test]
    fn inic_paths_beat_host_tcp_on_reductions() {
        // Offloading the protocol (and, in combined mode, the fold) must
        // show up as a faster predicted allreduce than either commodity
        // path. The two INIC modes are deliberately *not* ordered here:
        // the simulator shows the combined datapath's looped-back own
        // contribution can cost more than the host fold it saves — the
        // honest trade the mode ablation measures.
        let m = CollModel::collective(CollectiveOp::AllReduce, Algorithm::Ring, 8, 1 << 15);
        assert!(m.total(Technology::InicIdeal) < m.total(Technology::GigabitTcp));
        assert!(m.total(Technology::InicProtocol) < m.total(Technology::GigabitTcp));
        assert!(m.total(Technology::InicPrototype) < m.total(Technology::FastEthernet));
    }

    #[test]
    fn phase_predictions_cover_every_round() {
        let m = CollModel::collective(CollectiveOp::AllReduce, Algorithm::Ring, 4, 1 << 10);
        let phases = m.phase_predictions(Technology::GigabitTcp);
        let total: SimDuration = phases
            .iter()
            .map(|(_, t)| *t)
            .fold(SimDuration::ZERO, |a, b| a + b);
        assert_eq!(total, m.total(Technology::GigabitTcp));
        assert!(!phases.is_empty());
    }

    #[test]
    fn halo_model_scales_with_iterations() {
        let one = CollModel::halo(4, 64, 1);
        let five = CollModel::halo(4, 64, 5);
        assert!(five.total(Technology::GigabitTcp) > one.total(Technology::GigabitTcp) * 3);
        assert!(five.rounds() > one.rounds());
    }

    #[test]
    fn degenerate_single_rank_schedules_cost_nothing_on_the_wire() {
        let m = CollModel::collective(CollectiveOp::Broadcast, Algorithm::BinomialTree, 1, 128);
        assert_eq!(m.wire_bytes(), 0);
    }
}
