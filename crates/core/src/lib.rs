//! # acc-core — the Adaptable Computing Cluster
//!
//! The paper's primary contribution, rebuilt as a library: Beowulf
//! cluster scenarios where every node's network interface is either a
//! commodity NIC (Fast Ethernet or Gigabit Ethernet over the modelled
//! TCP stack) or an **INIC** — reconfigurable computing inserted in the
//! network datapath (ideal Section-4 card or ACEII prototype).
//!
//! * [`cluster`] — build a P-node cluster of a chosen
//!   [`cluster::Technology`] and run the two evaluation applications on
//!   it end-to-end (real data, checked against serial oracles).
//! * [`drivers`] — the per-node application drivers: the FFTW-template
//!   2D FFT (Section 3.1) and the distributed integer sort
//!   (Section 3.2), each with a commodity-NIC and an INIC
//!   implementation.
//! * [`model`] — the closed-form performance models of Section 4
//!   (Eqs. 3–17), used for the INIC curves of Figs. 4 and 5 and
//!   cross-checked against the simulator in tests.
//! * [`report`] — speedup tables and gnuplot-style series shared by the
//!   figure regenerators in `acc-bench`.
//! * [`audit`] — the online invariant Auditor attached to faulted runs:
//!   conservation checks over the ports' and cards' counters, failing
//!   at the first violation with a trace-tail dump.

#![forbid(unsafe_code)]

pub mod audit;
pub mod cluster;
pub mod deadline;
pub mod drivers;
pub mod liveness;
pub mod model;
pub mod report;
pub mod runner;

pub use audit::{AuditConfig, Auditor};
pub use cluster::{ClusterSpec, CollRunResult, FftRunResult, SortRunResult, Technology};
pub use deadline::{DeadlineHierarchy, PhaseBudget};
pub use drivers::{DriverProgress, RecoveryPolicy};
pub use liveness::{HangCause, HangReport};
pub use report::FaultDiagnostics;
pub use runner::{RunOutcome, RunRequest, Workload};
