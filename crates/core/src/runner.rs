//! A uniform "one run" description shared by every campaign driver.
//!
//! The figure regenerators, ablations, soak and fault campaigns in
//! `acc-bench` all reduce to the same shape: build a [`ClusterSpec`],
//! pick a workload, execute, read the result. [`RunRequest`] captures
//! that shape as a value, so a campaign can *describe* its whole run
//! matrix up front and hand the list to an executor — serial or
//! parallel — instead of interleaving description and execution.
//!
//! Each request is self-contained and owns its spec, so executing it
//! needs no shared state: the foundation of the deterministic parallel
//! executor (`acc-bench`'s `Executor`), which may run requests on any
//! worker thread in any order and still produce results indistinguishable
//! from a serial loop.

use acc_coll::{Algorithm, CollectiveOp};

use crate::cluster::{
    self, ClusterSpec, CollRunResult, FftRunResult, KeyDistribution, PartitionStrategy,
    ReduceRunResult, SortRunResult,
};
use crate::liveness::HangReport;

/// Which application a run executes, with its size parameters.
#[derive(Clone, Debug)]
pub enum Workload {
    /// The 2D FFT of Section 3.1 on an `rows × rows` matrix.
    Fft {
        /// Matrix dimension (rows == columns).
        rows: usize,
    },
    /// The integer sort of Section 3.2 (uniform keys, top-bits
    /// partitioning — the paper's configuration).
    Sort {
        /// Total keys across the cluster.
        total_keys: u64,
    },
    /// The integer sort with explicit distribution and partitioning
    /// (the skew ablation).
    SortCustom {
        /// Total keys across the cluster.
        total_keys: u64,
        /// Key distribution.
        distribution: KeyDistribution,
        /// Destination-rank assignment strategy.
        strategy: PartitionStrategy,
    },
    /// A flat AllReduce (sum) of one `elems`-element vector per node.
    AllReduce {
        /// Elements per node vector.
        elems: usize,
    },
    /// One collective through the engine with an explicit algorithm
    /// (the ablation axes: collective × algorithm × technology × p).
    Collective {
        /// Which collective.
        op: CollectiveOp,
        /// Which of its algorithms.
        algo: Algorithm,
        /// Elements per node vector.
        elems: usize,
    },
    /// The halo-exchange stencil workload (allreduce-heavy).
    Halo {
        /// Strip width per node, in elements.
        elems: usize,
        /// Stencil sweeps.
        iters: usize,
    },
}

/// One fully-described simulation run: spec + workload.
#[derive(Clone, Debug)]
pub struct RunRequest {
    /// The cluster to build.
    pub spec: ClusterSpec,
    /// The application to run on it.
    pub workload: Workload,
}

impl RunRequest {
    /// An FFT run.
    pub fn fft(spec: ClusterSpec, rows: usize) -> RunRequest {
        RunRequest {
            spec,
            workload: Workload::Fft { rows },
        }
    }

    /// A sort run with the paper's default key configuration.
    pub fn sort(spec: ClusterSpec, total_keys: u64) -> RunRequest {
        RunRequest {
            spec,
            workload: Workload::Sort { total_keys },
        }
    }

    /// A sort run with explicit distribution and partitioning.
    pub fn sort_custom(
        spec: ClusterSpec,
        total_keys: u64,
        distribution: KeyDistribution,
        strategy: PartitionStrategy,
    ) -> RunRequest {
        RunRequest {
            spec,
            workload: Workload::SortCustom {
                total_keys,
                distribution,
                strategy,
            },
        }
    }

    /// An AllReduce run.
    pub fn allreduce(spec: ClusterSpec, elems: usize) -> RunRequest {
        RunRequest {
            spec,
            workload: Workload::AllReduce { elems },
        }
    }

    /// A collective-engine run with an explicit algorithm.
    pub fn collective(
        spec: ClusterSpec,
        op: CollectiveOp,
        algo: Algorithm,
        elems: usize,
    ) -> RunRequest {
        RunRequest {
            spec,
            workload: Workload::Collective { op, algo, elems },
        }
    }

    /// A halo-exchange run.
    pub fn halo(spec: ClusterSpec, elems: usize, iters: usize) -> RunRequest {
        RunRequest {
            spec,
            workload: Workload::Halo { elems, iters },
        }
    }

    /// Execute the run to completion and return its outcome. A run
    /// that fails to terminate comes back as [`RunOutcome::Hung`] with
    /// the structured hang diagnosis — not a panic and not an infinite
    /// loop.
    pub fn execute(self) -> RunOutcome {
        let result = match self.workload {
            Workload::Fft { rows } => cluster::try_run_fft(self.spec, rows).map(RunOutcome::Fft),
            Workload::Sort { total_keys } => {
                cluster::try_run_sort(self.spec, total_keys).map(RunOutcome::Sort)
            }
            Workload::SortCustom {
                total_keys,
                distribution,
                strategy,
            } => cluster::try_run_sort_custom(self.spec, total_keys, distribution, strategy)
                .map(RunOutcome::Sort),
            Workload::AllReduce { elems } => {
                cluster::try_run_allreduce(self.spec, elems).map(RunOutcome::Reduce)
            }
            Workload::Collective { op, algo, elems } => {
                cluster::try_run_collective(self.spec, op, algo, elems).map(RunOutcome::Coll)
            }
            Workload::Halo { elems, iters } => {
                cluster::try_run_halo(self.spec, elems, iters).map(RunOutcome::Coll)
            }
        };
        result.unwrap_or_else(RunOutcome::Hung)
    }
}

/// The result of an executed [`RunRequest`], one variant per workload
/// family.
#[derive(Clone, Debug)]
pub enum RunOutcome {
    /// Result of an FFT run.
    Fft(FftRunResult),
    /// Result of a sort run (default or custom).
    Sort(SortRunResult),
    /// Result of an AllReduce run.
    Reduce(ReduceRunResult),
    /// Result of a collective-engine or halo run.
    Coll(CollRunResult),
    /// The run failed to terminate; the report names the stuck phase
    /// and rank.
    Hung(Box<HangReport>),
}

impl RunOutcome {
    /// Wall time of the run, whatever its workload.
    ///
    /// # Panics
    /// Panics on a hung run — a hang has no wall time, and silently
    /// returning one would corrupt whatever figure asked.
    pub fn total(&self) -> acc_sim::SimDuration {
        match self {
            RunOutcome::Fft(r) => r.total,
            RunOutcome::Sort(r) => r.total,
            RunOutcome::Reduce(r) => r.total,
            RunOutcome::Coll(r) => r.total,
            RunOutcome::Hung(report) => panic!("run hung, no wall time\n{report}"),
        }
    }

    /// Whether the run's output verified against its serial oracle.
    /// A hung run verified nothing.
    pub fn verified(&self) -> bool {
        match self {
            RunOutcome::Fft(r) => r.verified,
            RunOutcome::Sort(r) => r.verified,
            RunOutcome::Reduce(r) => r.verified,
            RunOutcome::Coll(r) => r.verified,
            RunOutcome::Hung(_) => false,
        }
    }

    /// Whether the run hung.
    pub fn is_hung(&self) -> bool {
        matches!(self, RunOutcome::Hung(_))
    }

    /// The hang report, if the run hung.
    pub fn hang(&self) -> Option<&HangReport> {
        match self {
            RunOutcome::Hung(report) => Some(report),
            _ => None,
        }
    }

    /// The FFT result.
    ///
    /// # Panics
    /// Panics if the outcome is not from an FFT run.
    pub fn into_fft(self) -> FftRunResult {
        match self {
            RunOutcome::Fft(r) => r,
            other => panic!("expected an FFT outcome, got {other:?}"),
        }
    }

    /// The sort result.
    ///
    /// # Panics
    /// Panics if the outcome is not from a sort run.
    pub fn into_sort(self) -> SortRunResult {
        match self {
            RunOutcome::Sort(r) => r,
            other => panic!("expected a sort outcome, got {other:?}"),
        }
    }

    /// The AllReduce result.
    ///
    /// # Panics
    /// Panics if the outcome is not from an AllReduce run.
    pub fn into_reduce(self) -> ReduceRunResult {
        match self {
            RunOutcome::Reduce(r) => r,
            other => panic!("expected an AllReduce outcome, got {other:?}"),
        }
    }

    /// The collective-engine result.
    ///
    /// # Panics
    /// Panics if the outcome is not from a collective or halo run.
    pub fn into_coll(self) -> CollRunResult {
        match self {
            RunOutcome::Coll(r) => r,
            other => panic!("expected a collective outcome, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Technology;

    #[test]
    fn request_execute_matches_direct_call() {
        let spec = ClusterSpec::new(2, Technology::InicIdeal);
        let direct = cluster::run_sort(spec.clone(), 1 << 10);
        let via_request = RunRequest::sort(spec, 1 << 10).execute().into_sort();
        assert_eq!(direct.total, via_request.total);
        assert_eq!(direct.interrupts, via_request.interrupts);
        assert!(via_request.verified);
    }

    #[test]
    fn outcome_accessors_route_by_workload() {
        let fft = RunRequest::fft(ClusterSpec::new(2, Technology::InicIdeal), 16).execute();
        assert!(matches!(fft, RunOutcome::Fft(_)));
        assert!(fft.verified());
        assert!(fft.total() > acc_sim::SimDuration::ZERO);
        let reduce =
            RunRequest::allreduce(ClusterSpec::new(2, Technology::GigabitTcp), 64).execute();
        assert!(reduce.verified());
        reduce.into_reduce();
    }

    #[test]
    #[should_panic(expected = "expected a sort outcome")]
    fn wrong_accessor_panics() {
        RunRequest::fft(ClusterSpec::new(2, Technology::InicIdeal), 16)
            .execute()
            .into_sort();
    }
}
