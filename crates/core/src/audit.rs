//! The online invariant Auditor.
//!
//! A cluster-attached observer wired only into faulted runs (a fault
//! plan is present on the [`ClusterSpec`](crate::ClusterSpec)): on a
//! periodic tick it reads the conservation counters the ports and cards
//! publish and panics at the first violation, so the engine's
//! panic-handler dumps the trace tail around the offending events. A
//! final, stricter pass ([`final_check`]) runs after the simulation
//! quiesces.
//!
//! The invariants:
//!
//! * **frame conservation**, per instrumented port: `frames_offered ≥
//!   frames_delivered + queue_drops + impair_drops` while running (the
//!   remainder is queued), with equality at quiescence unless a killed
//!   card legitimately strands its queue;
//! * **credit conservation**, cluster-wide: credits a card grants are
//!   an upper bound on the bytes senders charge against them
//!   (`credit_bytes_consumed ≤ credit_bytes_granted`), and no sender's
//!   outstanding window ever exceeds the credit window;
//! * **switch conservation**, per routed fabric switch: every frame a
//!   switch accepts resolves to exactly one fate — forwarded into an
//!   output queue, queue-dropped, blackholed (dead switch), or
//!   unroutable (partitioned destination): `frames_fwd + frames_dropped +
//!   frames_blackholed + frames_unroutable ≤ frames_in` while running
//!   (the remainder is in the forwarding pipeline), with equality at
//!   quiescence. Routed switches never flood, so the equality is exact
//!   — a silent multi-port replication or a lost frame both violate it;
//! * **datapath conservation**, per card: bytes leaving the gather
//!   datapath toward the host never exceed the bytes that entered it
//!   plus any zero-fill the card itself generated (`gather_bytes_out ≤
//!   gather_bytes_in + gather_bytes_padded`; padding covers the holes
//!   dead peers leave in a fixed-size interleave assembly, and
//!   retransmitted duplicates count on the way in, so equality is not
//!   required).

use std::any::Any;

use acc_sim::{Component, Ctx, SimDuration, StatsRegistry};

/// What the Auditor watches. Built by the cluster wiring, which knows
/// every instrumented stats scope.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Stats labels of every instrumented [`EgressPort`](acc_net::port::EgressPort).
    pub ports: Vec<String>,
    /// Stats labels of every INIC card (empty on commodity runs).
    pub cards: Vec<String>,
    /// Stats labels of every routed fabric switch (empty on the
    /// single-switch baseline, whose flooding replicates frames and has
    /// no one-fate-per-frame invariant).
    pub switches: Vec<String>,
    /// The cards' credit window in bytes (outstanding-bytes bound).
    pub credit_window: u64,
    /// Whether every instrumented port must have fully drained at the
    /// end of the run. False when the plan kills cards: a dead card
    /// legitimately strands whatever its uplink still queued.
    pub expect_quiescent_ports: bool,
    /// Cluster size — the Auditor stops ticking once `drivers_done`
    /// reaches it.
    pub p: u64,
}

/// Self event driving the periodic audit.
struct AuditTick;

/// The online auditor component. Checks run every [`Auditor::PERIOD`]
/// until every driver has reported done (or the tick cap is reached, a
/// backstop so a wedged run cannot tick forever).
pub struct Auditor {
    label: String,
    cfg: AuditConfig,
    ticks: u64,
}

impl Auditor {
    /// Audit cadence. A prime micro-count, so ticks drift across the
    /// protocol's natural periods instead of beating against them.
    pub const PERIOD: SimDuration = SimDuration::from_micros(613);

    /// Tick backstop: even if drivers never finish, the auditor goes
    /// quiet after this many ticks so the simulation can drain.
    const MAX_TICKS: u64 = 2_000_000;

    /// Build an auditor for one wired cluster.
    pub fn new(cfg: AuditConfig) -> Auditor {
        Auditor {
            label: "auditor".to_owned(),
            cfg,
            ticks: 0,
        }
    }
}

impl Component for Auditor {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        assert!(ev.downcast_ref::<AuditTick>().is_some() || ev.downcast_ref::<()>().is_some());
        self.ticks += 1;
        let done = ctx
            .stats()
            .counter_value("cluster", "drivers_done")
            .unwrap_or(0);
        if done >= self.cfg.p || self.ticks > Auditor::MAX_TICKS {
            return; // stop rescheduling; the final check takes over
        }
        check_running(ctx.stats(), &self.cfg);
        ctx.stats().counter(&self.label, "audit_ticks").inc();
        ctx.self_in(Auditor::PERIOD, AuditTick);
    }

    fn name(&self) -> &str {
        &self.label
    }
}

fn counter(stats: &StatsRegistry, scope: &str, name: &str) -> u64 {
    stats.counter_value(scope, name).unwrap_or(0)
}

/// The invariants that must hold at every instant of the run. Panics
/// with the offending counters on violation.
pub fn check_running(stats: &StatsRegistry, cfg: &AuditConfig) {
    for port in &cfg.ports {
        let offered = counter(stats, port, "frames_offered");
        let delivered = counter(stats, port, "frames_delivered");
        let queue_drops = counter(stats, port, "queue_drops");
        let impair_drops = counter(stats, port, "impair_drops");
        assert!(
            delivered + queue_drops + impair_drops <= offered,
            "AUDIT VIOLATION: port {port} accounts for more frames than were \
             offered: offered={offered} delivered={delivered} \
             queue_drops={queue_drops} impair_drops={impair_drops}"
        );
    }
    for sw in &cfg.switches {
        let frames_in = counter(stats, sw, "frames_in");
        let fwd = counter(stats, sw, "frames_fwd");
        let dropped = counter(stats, sw, "frames_dropped");
        let blackholed = counter(stats, sw, "frames_blackholed");
        let unroutable = counter(stats, sw, "frames_unroutable");
        assert!(
            fwd + dropped + blackholed + unroutable <= frames_in,
            "AUDIT VIOLATION: switch {sw} accounts for more frames than \
             arrived: in={frames_in} fwd={fwd} dropped={dropped} \
             blackholed={blackholed} unroutable={unroutable}"
        );
    }
    let mut granted_total = 0u64;
    let mut consumed_total = 0u64;
    for card in &cfg.cards {
        let bytes_in = counter(stats, card, "gather_bytes_in");
        let bytes_out = counter(stats, card, "gather_bytes_out");
        let bytes_padded = counter(stats, card, "gather_bytes_padded");
        assert!(
            bytes_out <= bytes_in + bytes_padded,
            "AUDIT VIOLATION: card {card} datapath emitted more bytes than \
             entered it: in={bytes_in} padded={bytes_padded} out={bytes_out}"
        );
        let outstanding_max = stats.gauge_max(card, "outstanding_bytes").unwrap_or(0.0);
        assert!(
            outstanding_max <= cfg.credit_window as f64,
            "AUDIT VIOLATION: card {card} exceeded its credit window: \
             outstanding max={outstanding_max} window={}",
            cfg.credit_window
        );
        granted_total += counter(stats, card, "credit_bytes_granted");
        consumed_total += counter(stats, card, "credit_bytes_consumed");
    }
    assert!(
        consumed_total <= granted_total,
        "AUDIT VIOLATION: cluster consumed more credit than was granted: \
         granted={granted_total} consumed={consumed_total}"
    );
}

/// The end-of-run pass: everything [`check_running`] checks, plus frame
/// conservation as an equality on quiescent ports — once the event
/// queue drained, every offered frame must be accounted for as
/// delivered or dropped.
pub fn final_check(stats: &StatsRegistry, cfg: &AuditConfig) {
    check_running(stats, cfg);
    // Switch conservation tightens to an equality unconditionally: the
    // forwarding pipeline always drains (a dead switch still counts its
    // pipeline casualties as blackholed), so even a run that strands
    // port queues must account for every arrived frame.
    for sw in &cfg.switches {
        let frames_in = counter(stats, sw, "frames_in");
        let fwd = counter(stats, sw, "frames_fwd");
        let dropped = counter(stats, sw, "frames_dropped");
        let blackholed = counter(stats, sw, "frames_blackholed");
        let unroutable = counter(stats, sw, "frames_unroutable");
        assert_eq!(
            frames_in,
            fwd + dropped + blackholed + unroutable,
            "AUDIT VIOLATION: switch {sw} lost track of frames: \
             in={frames_in} fwd={fwd} dropped={dropped} \
             blackholed={blackholed} unroutable={unroutable}"
        );
    }
    if !cfg.expect_quiescent_ports {
        return;
    }
    for port in &cfg.ports {
        let offered = counter(stats, port, "frames_offered");
        let delivered = counter(stats, port, "frames_delivered");
        let queue_drops = counter(stats, port, "queue_drops");
        let impair_drops = counter(stats, port, "impair_drops");
        assert_eq!(
            offered,
            delivered + queue_drops + impair_drops,
            "AUDIT VIOLATION: port {port} did not drain: offered={offered} \
             delivered={delivered} queue_drops={queue_drops} \
             impair_drops={impair_drops}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AuditConfig {
        AuditConfig {
            ports: vec!["up0".into()],
            cards: vec!["inic0".into()],
            switches: vec![],
            credit_window: 1000,
            expect_quiescent_ports: true,
            p: 1,
        }
    }

    #[test]
    fn clean_counters_pass_both_checks() {
        let mut stats = StatsRegistry::new();
        stats.counter("up0", "frames_offered").add(10);
        stats.counter("up0", "frames_delivered").add(8);
        stats.counter("up0", "queue_drops").add(1);
        stats.counter("up0", "impair_drops").add(1);
        stats.counter("inic0", "gather_bytes_in").add(4096);
        stats.counter("inic0", "gather_bytes_out").add(4096);
        stats.counter("inic0", "credit_bytes_granted").add(2048);
        stats.counter("inic0", "credit_bytes_consumed").add(2048);
        stats.gauge("inic0", "outstanding_bytes").set(900.0);
        check_running(&stats, &cfg());
        final_check(&stats, &cfg());
    }

    #[test]
    fn switch_conservation_accepts_all_four_fates() {
        let mut stats = StatsRegistry::new();
        stats.counter("fsw0", "frames_in").add(10);
        stats.counter("fsw0", "frames_fwd").add(6);
        stats.counter("fsw0", "frames_dropped").add(1);
        stats.counter("fsw0", "frames_blackholed").add(2);
        stats.counter("fsw0", "frames_unroutable").add(1);
        let mut c = cfg();
        c.switches = vec!["fsw0".into()];
        check_running(&stats, &c);
        final_check(&stats, &c);
    }

    #[test]
    #[should_panic(expected = "accounts for more frames")]
    fn switch_over_accounting_is_a_violation() {
        let mut stats = StatsRegistry::new();
        stats.counter("fsw0", "frames_in").add(3);
        stats.counter("fsw0", "frames_fwd").add(4);
        let mut c = cfg();
        c.switches = vec!["fsw0".into()];
        check_running(&stats, &c);
    }

    #[test]
    #[should_panic(expected = "lost track of frames")]
    fn switch_losing_a_frame_fails_the_final_equality() {
        // One arrived frame never resolved to any fate — a silent loss.
        let mut stats = StatsRegistry::new();
        stats.counter("fsw0", "frames_in").add(5);
        stats.counter("fsw0", "frames_fwd").add(4);
        let mut c = cfg();
        c.switches = vec!["fsw0".into()];
        // Even with non-quiescent ports the switch equality must hold.
        c.expect_quiescent_ports = false;
        final_check(&stats, &c);
    }

    #[test]
    #[should_panic(expected = "more frames than were offered")]
    fn over_delivery_is_a_violation() {
        let mut stats = StatsRegistry::new();
        stats.counter("up0", "frames_offered").add(5);
        stats.counter("up0", "frames_delivered").add(6);
        check_running(&stats, &cfg());
    }

    #[test]
    #[should_panic(expected = "did not drain")]
    fn stranded_frames_fail_the_final_equality() {
        let mut stats = StatsRegistry::new();
        stats.counter("up0", "frames_offered").add(5);
        stats.counter("up0", "frames_delivered").add(4);
        final_check(&stats, &cfg());
    }

    #[test]
    #[should_panic(expected = "more credit than was granted")]
    fn credit_overdraw_is_a_violation() {
        let mut stats = StatsRegistry::new();
        stats.counter("inic0", "credit_bytes_granted").add(100);
        stats.counter("inic0", "credit_bytes_consumed").add(101);
        check_running(&stats, &cfg());
    }

    #[test]
    #[should_panic(expected = "exceeded its credit window")]
    fn window_overrun_is_a_violation() {
        let mut stats = StatsRegistry::new();
        stats.gauge("inic0", "outstanding_bytes").set(1001.0);
        check_running(&stats, &cfg());
    }
}
