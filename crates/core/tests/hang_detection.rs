//! A deliberately hang-inducing fault plan must come back as a
//! structured HangReport (named phase and rank), not a panic or an
//! infinite loop.

use acc_chaos::{FaultEvent, FaultPlan, LinkId};
use acc_core::{ClusterSpec, RunOutcome, RunRequest, Technology};
use acc_sim::{SimDuration, SimTime};

fn ms(v: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(v)
}

/// An outage that swallows every retransmit past the abandon horizon:
/// rank 1 can never deliver its exchange partitions, its card abandons
/// the stream, and the gathers on every peer wait forever.
fn hang_plan() -> FaultPlan {
    FaultPlan::new(0xDEAD).with(FaultEvent::LinkOutage {
        link: LinkId::NodeUplink(1),
        from: ms(0) + SimDuration::from_micros(1),
        until: ms(30_000),
    })
}

#[test]
fn seeded_outage_hang_is_detected_and_attributed() {
    let spec = ClusterSpec::new(4, Technology::InicIdeal)
        .with_fault_plan(hang_plan())
        .with_quiet(true);
    let outcome = RunRequest::sort(spec, 1 << 12).execute();
    let report = match &outcome {
        RunOutcome::Hung(r) => r,
        other => panic!("expected a hang, got {other:?}"),
    };
    assert!(!outcome.verified());
    let culprit = report.culprit.as_ref().expect("culprit named");
    assert_eq!(culprit.phase, "exchange", "stuck phase is named");
    eprintln!("attribution: {}", report.attribution());
    eprintln!("{report}");
}
