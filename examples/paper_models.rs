//! Print the paper's Section 4 analytic models (Eqs. 3–17) as tables:
//! the predicted ideal-INIC FFT transpose decomposition and speedups,
//! and the predicted integer-sort times — the same closed forms behind
//! the INIC curves of Figs. 4 and 5.
//!
//! Run with:
//! ```sh
//! cargo run --release --example paper_models
//! ```

use acc::core::model::{FftModel, SortModel};
use acc::core::report::PAPER_PROC_COUNTS;

fn main() {
    for rows in [256usize, 512] {
        let m = FftModel::new(rows);
        println!("== FFT model, {rows}x{rows} (Eqs. 3-10) ==");
        println!(
            "{:>3} {:>12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>9}",
            "P", "S (KiB)", "Tdtc", "Tdtg", "Tdfg", "Tdth", "Ttrans", "speedup"
        );
        for &p in &PAPER_PROC_COUNTS {
            println!(
                "{:>3} {:>12.1} {:>7.3} ms {:>7.3} ms {:>7.3} ms {:>7.3} ms {:>7.3} ms {:>9.2}",
                p,
                m.partition_size(p).as_kib_f64(),
                m.t_dtc(p).as_millis_f64(),
                m.t_dtg(p).as_millis_f64(),
                m.t_dfg(p).as_millis_f64(),
                m.t_dth(p).as_millis_f64(),
                m.t_trans(p).as_millis_f64(),
                m.speedup(p),
            );
        }
        println!();
    }

    let s = SortModel::new(1 << 25);
    println!("== Integer sort model, 2^25 keys (Eqs. 11-17) ==");
    println!(
        "{:>3} {:>12} {:>6} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "P", "S (KiB)", "N", "Tinic", "Tcount", "Ttotal", "Tserial", "speedup"
    );
    for &p in &PAPER_PROC_COUNTS {
        println!(
            "{:>3} {:>12.0} {:>6} {:>7.3} ms {:>7.0} ms {:>7.0} ms {:>7.0} ms {:>9.2}",
            p,
            s.partition_size(p).as_kib_f64(),
            s.recv_buckets(p),
            s.t_inic(p).as_millis_f64(),
            s.t_countsort(p).as_millis_f64(),
            s.t_total(p).as_millis_f64(),
            s.t_serial().as_millis_f64(),
            s.speedup(p),
        );
    }
}
