//! Distributed integer sort across the four network technologies.
//!
//! Reproduces the Section 3.2 pipeline (bucket → all-to-all → bucket →
//! count sort) on an 8-node cluster with 2²⁰ uniform keys, printing the
//! per-phase decomposition. On INIC technologies the bucket phases
//! migrate into the card datapath: watch the `bucket1`/`bucket2`
//! columns empty out.
//!
//! Run with:
//! ```sh
//! cargo run --release --example intsort_cluster
//! ```

use acc::core::cluster::{run_sort, ClusterSpec, Technology};

fn main() {
    let p = 8;
    let total_keys: u64 = 1 << 20;
    println!("Integer sort, {total_keys} uniform keys, P = {p} nodes");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10}  verified",
        "technology", "total", "bucket1", "comm", "bucket2", "count"
    );
    for tech in Technology::ALL {
        let r = run_sort(ClusterSpec::new(p, tech), total_keys);
        println!(
            "{:<16} {:>7.2} ms {:>7.2} ms {:>7.2} ms {:>7.2} ms {:>7.2} ms  {}",
            tech.label(),
            r.total.as_millis_f64(),
            r.bucket1.as_millis_f64(),
            r.comm.as_millis_f64(),
            r.bucket2.as_millis_f64(),
            r.count.as_millis_f64(),
            r.verified
        );
    }
}
