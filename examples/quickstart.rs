//! Quickstart: compare a 2D FFT on the four network technologies.
//!
//! Builds an 8-node cluster four times — Fast Ethernet, Gigabit
//! Ethernet + TCP, prototype INIC (ACEII), ideal INIC — runs a 256×256
//! distributed FFT end to end on each (with the result verified against
//! a serial FFT), and prints the timing decomposition.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use acc::core::cluster::{run_fft, ClusterSpec, Technology};

fn main() {
    let p = 8;
    let rows = 256;
    println!("2D FFT, {rows}x{rows} complex doubles, P = {p} nodes");
    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>11} {:>11}  verified",
        "technology", "total", "compute", "transpose", "irqs", "proto cpu"
    );
    for tech in Technology::ALL {
        let r = run_fft(ClusterSpec::new(p, tech), rows);
        println!(
            "{:<18} {:>9.3} ms {:>9.3} ms {:>9.3} ms {:>11} {:>8.3} ms  {}",
            tech.label(),
            r.total.as_millis_f64(),
            r.compute.as_millis_f64(),
            r.transpose.as_millis_f64(),
            r.interrupts,
            r.protocol_cpu.as_millis_f64(),
            r.verified
        );
    }
}
