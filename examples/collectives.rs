//! The collective-operations extension: AllReduce on the INIC.
//!
//! The paper's summary claims the architecture can "accelerate
//! functions ranging from collective operations to MPI derived data
//! types". This example runs an AllReduce (sum of one f64 vector per
//! node) on TCP and on the two INIC generations through the `acc-coll`
//! engine: the policy picks the schedule (the segmented ring at this
//! size), and on the combined INIC every `Sum` round folds in the
//! card's `ReduceSum` operator at datapath speed — the host does zero
//! arithmetic (the `host reduce` column), where the TCP path pays tens
//! of milliseconds of Athlon memory passes on top of its slower wire.
//!
//! Run with:
//! ```sh
//! cargo run --release --example collectives
//! ```

use acc::core::cluster::{run_allreduce, ClusterSpec, Technology};

fn main() {
    let elems = 1 << 18; // 2 MiB vector per node
    println!("AllReduce(sum), {elems} f64 elements per node");
    for p in [2usize, 4, 8, 16] {
        println!("\nP = {p}:");
        println!(
            "{:<16} {:>10} {:>10} {:>12}  verified",
            "technology", "total", "comm", "host reduce"
        );
        for tech in [
            Technology::GigabitTcp,
            Technology::InicPrototype,
            Technology::InicIdeal,
        ] {
            let r = run_allreduce(ClusterSpec::new(p, tech), elems);
            println!(
                "{:<16} {:>7.2} ms {:>7.2} ms {:>9.2} ms  {}",
                tech.label(),
                r.total.as_millis_f64(),
                r.comm.as_millis_f64(),
                r.reduce.as_millis_f64(),
                r.verified
            );
        }
    }
}
