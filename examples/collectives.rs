//! The collective-operations extension: AllReduce on the INIC.
//!
//! The paper's summary claims the architecture can "accelerate
//! functions ranging from collective operations to MPI derived data
//! types". This example runs a flat AllReduce (sum of one f64 vector
//! per node) on TCP and on the two INIC generations: the card's
//! `ReduceSum` operator folds every arriving stream into an accumulator
//! at wire speed, so only the reduced vector ever crosses the PCI bus
//! and the host does zero arithmetic.
//!
//! Run with:
//! ```sh
//! cargo run --release --example collectives
//! ```

use acc::core::cluster::{run_allreduce, ClusterSpec, Technology};

fn main() {
    let elems = 1 << 18; // 2 MiB vector per node
    println!("AllReduce(sum), {elems} f64 elements per node");
    for p in [2usize, 4, 8, 16] {
        println!("\nP = {p}:");
        println!(
            "{:<16} {:>10} {:>10} {:>12}  verified",
            "technology", "total", "comm", "host reduce"
        );
        for tech in [
            Technology::GigabitTcp,
            Technology::InicPrototype,
            Technology::InicIdeal,
        ] {
            let r = run_allreduce(ClusterSpec::new(p, tech), elems);
            println!(
                "{:<16} {:>7.2} ms {:>7.2} ms {:>9.2} ms  {}",
                tech.label(),
                r.total.as_millis_f64(),
                r.comm.as_millis_f64(),
                r.reduce.as_millis_f64(),
                r.verified
            );
        }
    }
}
