//! # ACC — A Reconfigurable Extension to the Network Interface of Beowulf Clusters
//!
//! Umbrella crate re-exporting the whole workspace, so examples and
//! downstream users can depend on one crate:
//!
//! * [`sim`] — deterministic discrete-event kernel,
//! * [`net`] — Ethernet frames, links, switches,
//! * [`proto`] — TCP model + the INIC application-specific protocol,
//! * [`host`] — commodity-PC models (memory hierarchy, buses,
//!   interrupts, kernel cost models),
//! * [`fpga`] — FPGA devices, bitstreams, dataflow operators, INIC
//!   cards,
//! * [`algos`] — FFT / transpose / sorting kernels and workloads,
//! * [`coll`] — the collective engine: pluggable algorithms, per-rank
//!   schedules, selection policy, CLB-budgeted offload plans,
//! * [`core`] — the Adaptable Computing Cluster: scenario runners,
//!   application drivers, Section-4 analytic models, reports.
//!
//! ## Quickstart
//!
//! ```
//! use acc::core::{cluster, Technology, ClusterSpec};
//!
//! // A 4-node Gigabit-Ethernet cluster vs the same cluster with ideal
//! // INICs, running a 64×64 distributed 2D FFT end to end.
//! let gige = cluster::run_fft(ClusterSpec::new(4, Technology::GigabitTcp), 64);
//! let inic = cluster::run_fft(ClusterSpec::new(4, Technology::InicIdeal), 64);
//! assert!(gige.verified && inic.verified);
//! assert!(inic.transpose < gige.transpose);
//! ```

pub use acc_algos as algos;
pub use acc_coll as coll;
pub use acc_core as core;
pub use acc_fpga as fpga;
pub use acc_host as host;
pub use acc_net as net;
pub use acc_proto as proto;
pub use acc_sim as sim;
